"""Pluggable page stores: where disk pages actually live.

The :class:`~repro.storage.disk.DiskManager` counts I/O; a :class:`PageStore`
is the substrate underneath it that holds page contents.  Three
implementations cover the library's lifecycle:

* :class:`MemoryPageStore` -- the historical dict-backed simulator.  Pages are
  live Python objects; nothing survives the process.
* :class:`FilePageStore` -- one file, fixed-size page slots, a binary header,
  and an optional JSON metadata blob at the tail.  A built diagram saved into
  this format is a durable artifact that a later process can reopen.
* :class:`MmapPageStore` -- the same file format opened read-mostly through
  ``mmap`` for cold-start serving: nothing is decoded until a page is first
  read, and updates go to an in-memory overlay that leaves the snapshot file
  untouched.

Invariant (machine-checked by ``repro.lint``'s *counted-io* rule): query
and backend code never calls ``load_page``/``store_page``/``delete_page``
directly -- every page touch goes through the
:class:`~repro.storage.disk.DiskManager`, because the paper's reported
metric is *counted* page accesses and the buffer pool invalidates frames on
the manager's write path.  A store reached behind the manager's back would
silently uncount I/O and serve stale frames.  Durability of live updates is
deliberately *not* this layer's job: snapshot files are immutable once
written; the write-ahead log (:mod:`repro.wal`) owns crash safety and folds
into the next snapshot generation at checkpoint time.

File layout (little-endian)::

    [0, 64)                      header: magic, version, slot size,
                                 slot count, next page id, meta offset/len,
                                 meta CRC-32, whole-file CRC-32 (version 2)
    [64, 64 + slots*slot_bytes)  page slots: status byte, capacity,
                                 payload length, payload CRC-32 (version 2),
                                 encoded entries
    [meta_offset, +meta_len)     UTF-8 JSON metadata (diagram snapshot state)

Slot index equals page id (the disk manager allocates ids densely), so a page
read is one ``seek`` -- or one slice of the mapped buffer -- plus a decode.

Corruption safety (format version 2): every slot carries a CRC-32 of its
payload, the metadata blob carries its own CRC-32 in the header, and a
*sealed* snapshot (one finished by :meth:`FilePageStore.write_meta`, which
is how every save ends) carries a whole-file CRC-32.  A checksum mismatch
raises :class:`CorruptSnapshotError` -- a flipped bit is loud, never a
silently different query answer.  Version-1 files (no checksums) remain
readable; :func:`verify_snapshot_file` falls back to a structural decode
sweep for them.
"""

from __future__ import annotations

import abc
import json
import mmap
import os
import struct
import zlib
from typing import Any, BinaryIO, Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.storage.codec import decode_page, encode_page
from repro.storage.page import Page

MAGIC = b"UVSNAP01"
FORMAT_VERSION = 2
HEADER_SIZE = 64
_HEADER = struct.Struct("<8sHHIQQQQ")  # magic, version, flags, slot_bytes,
#                                        slot_count, next_page_id, meta_offset, meta_len
_HEADER_CRCS = struct.Struct("<II")    # meta_crc, file_crc (version 2; zero on v1)
_CRCS_OFFSET = _HEADER.size            # the two CRC words sit in the header padding
_FILE_CRC_OFFSET = _CRCS_OFFSET + 4    # byte offset of the whole-file CRC word
_SLOT_HEADER_V1 = struct.Struct("<BII")   # status, capacity, payload_len
_SLOT_HEADER_V2 = struct.Struct("<BIII")  # status, capacity, payload_len, payload_crc
_SLOT_LIVE = 1
_SLOT_EMPTY = 0


def _slot_header(version: int) -> struct.Struct:
    """The slot-header layout of a format version."""
    return _SLOT_HEADER_V2 if version >= 2 else _SLOT_HEADER_V1

DEFAULT_SLOT_BYTES = 8192
"""Default page-slot size.

Twice the simulated 4 KB page: encoded entries carry tags and length
prefixes, so a full page's payload can exceed its nominal byte size.
"""


class PageStoreError(RuntimeError):
    """Base error of the page-store layer."""


class PageOverflowError(PageStoreError):
    """An encoded page payload does not fit in the store's fixed slot size."""


class ReadOnlyStoreError(PageStoreError):
    """A mutation was attempted on a store that cannot persist it."""


class CorruptSnapshotError(PageStoreError):
    """A snapshot file failed a structural or checksum check.

    Raised for a bad magic, a checksum mismatch (per-page, metadata, or
    whole-file), an internally inconsistent header, or page bytes that no
    longer decode.  The structured degradation contract of the storage
    layer: corruption is *detected and raised*, never served as a silently
    different answer.  Live deployments quarantine the offending generation
    and fall back to the previous one (see
    :func:`repro.engine.snapshot.open_live_engine`).
    """


class PageStore(abc.ABC):
    """Persistence substrate for fixed-size pages, keyed by page id.

    The disk manager performs the I/O *accounting*; stores only move page
    contents.  ``store_page`` persists/replaces a page, ``load_page`` returns
    a fresh (or shared, for the memory store) :class:`Page`, and the metadata
    hooks carry the JSON snapshot state of a saved diagram.
    """

    #: registry key of the store kind (``"memory"`` / ``"file"`` / ``"mmap"``)
    kind: str = ""

    #: ``False`` for read-mostly stores that keep mutations in an in-memory
    #: overlay and never touch their backing file (serving a snapshot must
    #: not be able to corrupt it).
    writable: bool = True

    #: ``True`` when :meth:`load_page` keeps no per-call mutable state (no
    #: shared file position), so concurrent reader *threads* on one store
    #: object cannot interleave into corrupted pages.  Independent of this
    #: flag, any number of *processes* may each open their own store on the
    #: same snapshot path: read-only opens never write the file, and every
    #: ``load_page`` decodes a fresh :class:`Page` from immutable bytes --
    #: the multi-process serving guarantee :mod:`repro.serve` relies on.
    thread_safe_reads: bool = False

    @abc.abstractmethod
    def store_page(self, page: Page) -> None:
        """Persist ``page`` (replacing any previous content for its id)."""

    @abc.abstractmethod
    def load_page(self, page_id: int) -> Page:
        """Materialise one page.

        Raises:
            KeyError: for an id that was never stored or has been deleted.
        """

    @abc.abstractmethod
    def delete_page(self, page_id: int) -> None:
        """Drop one page (no-op for unknown ids)."""

    @abc.abstractmethod
    def page_ids(self) -> List[int]:
        """Sorted ids of all live pages."""

    @abc.abstractmethod
    def next_page_id(self) -> int:
        """Smallest id never handed out (used to seed the allocator)."""

    # metadata ----------------------------------------------------------- #
    @abc.abstractmethod
    def read_meta(self) -> Optional[Dict[str, Any]]:
        """The JSON metadata blob, or ``None`` when absent."""

    @abc.abstractmethod
    def write_meta(self, meta: Dict[str, Any]) -> None:
        """Persist the JSON metadata blob."""

    # lifecycle ---------------------------------------------------------- #
    def flush(self) -> None:
        """Force buffered state to the backing medium (default: no-op)."""

    def close(self) -> None:
        """Release resources (default: flush)."""
        self.flush()

    def __contains__(self, page_id: int) -> bool:
        return page_id in set(self.page_ids())

    def __len__(self) -> int:
        return len(self.page_ids())


# ---------------------------------------------------------------------- #
# memory
# ---------------------------------------------------------------------- #
class MemoryPageStore(PageStore):
    """The historical in-process simulator: pages live in a dict.

    ``load_page`` returns the *same* object that was stored, so in-place page
    mutation (how the indexes maintain their leaf lists) behaves exactly as
    it did before stores existed.
    """

    kind = "memory"
    thread_safe_reads = True  # dict lookups; no shared cursor

    def __init__(self) -> None:
        self._pages: Dict[int, Page] = {}
        self._meta: Optional[Dict[str, Any]] = None

    def store_page(self, page: Page) -> None:
        self._pages[page.page_id] = page

    def load_page(self, page_id: int) -> Page:
        return self._pages[page_id]

    def delete_page(self, page_id: int) -> None:
        self._pages.pop(page_id, None)

    def page_ids(self) -> List[int]:
        return sorted(self._pages)

    def next_page_id(self) -> int:
        return max(self._pages, default=-1) + 1

    def read_meta(self) -> Optional[Dict[str, Any]]:
        return self._meta

    def write_meta(self, meta: Dict[str, Any]) -> None:
        self._meta = meta

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)


# ---------------------------------------------------------------------- #
# file
# ---------------------------------------------------------------------- #
class FilePageStore(PageStore):
    """A real file-backed store: fixed-size slots addressed by page id.

    :meth:`create` makes a fresh read-write file (the live store of a build).
    :meth:`open` reopens an existing snapshot and defaults to **read-only**:
    the file is never written; mutations (live updates on a reopened engine)
    go to an in-memory overlay, so serving a snapshot can never corrupt it.
    Pass ``writable=True`` only to edit a snapshot file in place.

    On a writable store, page contents are authoritative on disk after
    :meth:`flush` / :meth:`close` (the disk manager flushes its working set
    through here when a diagram is saved).

    Reads go through the handle's shared file cursor (seek + read), so one
    store object must not be shared between reader threads
    (``thread_safe_reads`` stays ``False``); multiple *processes* each
    opening the same snapshot read-only remain safe -- every process owns
    its handle and the file is never written.  Use the mmap store for
    cursor-free reads.
    """

    kind = "file"

    def __init__(self, path: str, handle: BinaryIO, slot_bytes: int,
                 slot_count: int, next_id: int, capacities: Dict[int, int],
                 writable: bool = True,
                 format_version: int = FORMAT_VERSION,
                 meta_crc: int = 0, file_crc: int = 0) -> None:
        self.path = path
        self._file = handle
        self.slot_bytes = slot_bytes
        self._slot_count = slot_count
        self._next_id = next_id
        # page_id -> capacity for live slots (the in-memory slot directory)
        self._capacities = capacities
        self.writable = writable
        #: on-disk layout version; an opened v1 snapshot stays v1 (its slot
        #: headers have no CRC word, so slot offsets must not change).
        self.format_version = format_version
        self._slot_header = _slot_header(format_version)
        self._meta_crc = meta_crc
        self._file_crc = file_crc
        # Read-only mode keeps mutations here, never in the file.
        self._overlay: Dict[int, Page] = {}
        self._deleted: Set[int] = set()
        self._meta_cache: Optional[Dict[str, Any]] = None

    # -- construction ---------------------------------------------------- #
    @classmethod
    def create(cls, path: str, slot_bytes: int = DEFAULT_SLOT_BYTES) -> "FilePageStore":
        """Create (truncating) a new page file."""
        if slot_bytes <= _SLOT_HEADER_V2.size:
            raise ValueError("slot_bytes is too small to hold a slot header")
        handle = open(path, "w+b")
        store = cls(path, handle, slot_bytes, slot_count=0, next_id=0, capacities={})
        store._write_header(meta_offset=0, meta_len=0)
        return store

    @classmethod
    def open(cls, path: str, writable: bool = False) -> "FilePageStore":
        """Open an existing page file (read-only overlay mode by default)."""
        handle = open(path, "r+b" if writable else "rb")
        header = _read_header(handle)
        slot_struct = _slot_header(header.version)
        capacities = {}
        for slot in range(header.slot_count):
            handle.seek(HEADER_SIZE + slot * header.slot_bytes)
            raw = handle.read(slot_struct.size)
            if len(raw) < slot_struct.size:
                raise CorruptSnapshotError(
                    f"page file truncated inside slot {slot}"
                )
            status, capacity = slot_struct.unpack(raw)[:2]
            if status == _SLOT_LIVE:
                capacities[slot] = capacity
            elif status != _SLOT_EMPTY:
                raise CorruptSnapshotError(
                    f"page {slot}: unknown slot status byte {status}"
                )
        return cls(path, handle, header.slot_bytes, header.slot_count,
                   header.next_id, capacities, writable=writable,
                   format_version=header.version,
                   meta_crc=header.meta_crc, file_crc=header.file_crc)

    # -- page access ----------------------------------------------------- #
    def store_page(self, page: Page) -> None:
        if not self.writable:
            self._overlay[page.page_id] = page
            self._deleted.discard(page.page_id)
            self._next_id = max(self._next_id, page.page_id + 1)
            return
        payload = encode_page(page)
        if self._slot_header.size + len(payload) > self.slot_bytes:
            raise PageOverflowError(
                f"page {page.page_id} needs {len(payload)} payload bytes but slots "
                f"hold {self.slot_bytes - self._slot_header.size}; recreate the "
                f"store with a larger slot_bytes"
            )
        self._unseal()
        self._ensure_slot(page.page_id)
        self._file.seek(self._slot_offset(page.page_id))
        self._file.write(self._pack_slot(_SLOT_LIVE, page.capacity, payload))
        self._file.write(payload)
        self._capacities[page.page_id] = page.capacity
        self._next_id = max(self._next_id, page.page_id + 1)

    def load_page(self, page_id: int) -> Page:
        if page_id in self._overlay:
            return self._overlay[page_id]
        if page_id in self._deleted or page_id not in self._capacities:
            raise KeyError(page_id)
        self._file.seek(self._slot_offset(page_id))
        fields = self._slot_header.unpack(self._file.read(self._slot_header.size))
        status, capacity, payload_len = fields[0], fields[1], fields[2]
        if status != _SLOT_LIVE:  # pragma: no cover - directory/file mismatch
            raise KeyError(page_id)
        payload_crc = fields[3] if self.format_version >= 2 else None
        return _checked_decode(page_id, capacity, self._file.read(payload_len),
                               payload_crc)

    def delete_page(self, page_id: int) -> None:
        if not self.writable:
            self._overlay.pop(page_id, None)
            self._deleted.add(page_id)
            return
        if page_id not in self._capacities:
            return
        self._unseal()
        self._file.seek(self._slot_offset(page_id))
        self._file.write(self._pack_slot(_SLOT_EMPTY, 0, b""))
        del self._capacities[page_id]

    def page_ids(self) -> List[int]:
        ids = (set(self._capacities) | set(self._overlay)) - self._deleted
        return sorted(ids)

    def __contains__(self, page_id: int) -> bool:
        if page_id in self._overlay:
            return True
        return page_id in self._capacities and page_id not in self._deleted

    def __len__(self) -> int:
        return len((set(self._capacities) | set(self._overlay)) - self._deleted)

    def next_page_id(self) -> int:
        return self._next_id

    # -- metadata -------------------------------------------------------- #
    def read_meta(self) -> Optional[Dict[str, Any]]:
        if self._meta_cache is not None:
            return self._meta_cache
        header = _read_header(self._file)
        if header.meta_offset == 0 or header.meta_len == 0:
            return None
        self._file.seek(header.meta_offset)
        blob = self._file.read(header.meta_len)
        self._meta_cache = _checked_meta(blob, header)
        return self._meta_cache

    def write_meta(self, meta: Dict[str, Any]) -> None:
        """Append the metadata blob after the slot region and seal the file.

        Every save ends here, so this is where a version-2 snapshot gets its
        metadata CRC and whole-file CRC: blob, then a header carrying the
        meta CRC with a zeroed file-CRC word, then the file CRC computed over
        the whole file (with its own word zeroed) and written last.  Any
        partial write leaves either a zero file CRC (unsealed: verification
        falls back to the structural sweep) or a mismatch (detected).
        """
        if not self.writable:
            raise ReadOnlyStoreError(
                "this store serves its snapshot read-only; save() the engine "
                "to a (new) path instead"
            )
        blob = json.dumps(meta, separators=(",", ":")).encode("utf-8")
        meta_offset = self._slots_end()
        self._file.truncate(meta_offset)
        self._file.seek(meta_offset)
        self._file.write(blob)
        self._meta_crc = zlib.crc32(blob)
        self._file_crc = 0
        self._write_header(meta_offset=meta_offset, meta_len=len(blob))
        if self.format_version >= 2:
            self._file.flush()
            self._file_crc = _file_crc_of(self._file)
            self._write_header(meta_offset=meta_offset, meta_len=len(blob))
        self._meta_cache = meta

    # -- lifecycle ------------------------------------------------------- #
    def flush(self) -> None:
        if not self.writable:
            return
        self._write_header_preserving_meta()
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self.flush()
            self._file.close()

    # -- plumbing -------------------------------------------------------- #
    def _slot_offset(self, page_id: int) -> int:
        return HEADER_SIZE + page_id * self.slot_bytes

    def _slots_end(self) -> int:
        return HEADER_SIZE + self._slot_count * self.slot_bytes

    def _pack_slot(self, status: int, capacity: int, payload: bytes) -> bytes:
        if self.format_version >= 2:
            return _SLOT_HEADER_V2.pack(status, capacity, len(payload),
                                        zlib.crc32(payload))
        return _SLOT_HEADER_V1.pack(status, capacity, len(payload))

    def _unseal(self) -> None:
        """Drop a stale whole-file CRC before mutating sealed page bytes."""
        if self._file_crc == 0:
            return
        self._file_crc = 0
        self._file.seek(_FILE_CRC_OFFSET)
        self._file.write(b"\x00\x00\x00\x00")

    def _ensure_slot(self, page_id: int) -> None:
        """Grow the slot region to cover ``page_id``, displacing any meta tail."""
        if page_id < self._slot_count:
            return
        header = _read_header(self._file)
        new_count = page_id + 1
        new_end = HEADER_SIZE + new_count * self.slot_bytes
        if header.meta_offset:
            # Pages grew past the saved snapshot: drop the (now stale) meta
            # tail; the next save() writes a fresh one.
            self._file.truncate(header.meta_offset)
            self._meta_cache = None
            self._meta_crc = 0
        # Zero-fill the new slots so their status bytes read as empty.
        self._file.seek(0, os.SEEK_END)
        current_end = self._file.tell()
        if current_end < new_end:
            self._file.write(b"\x00" * (new_end - current_end))
        self._slot_count = new_count
        self._write_header(meta_offset=0, meta_len=0)

    def _write_header(self, meta_offset: int, meta_len: int) -> None:
        header = _HEADER.pack(
            MAGIC, self.format_version, 0, self.slot_bytes,
            self._slot_count, self._next_id, meta_offset, meta_len,
        )
        padded = bytearray(header.ljust(HEADER_SIZE, b"\x00"))
        if self.format_version >= 2:
            _HEADER_CRCS.pack_into(padded, _CRCS_OFFSET,
                                   self._meta_crc, self._file_crc)
        self._file.seek(0)
        self._file.write(bytes(padded))

    def _write_header_preserving_meta(self) -> None:
        header = _read_header(self._file)
        self._write_header(meta_offset=header.meta_offset, meta_len=header.meta_len)


class _Header(NamedTuple):
    """Parsed page-file header."""

    version: int
    slot_bytes: int
    slot_count: int
    next_id: int
    meta_offset: int
    meta_len: int
    meta_crc: int
    file_crc: int


def _parse_header(raw: bytes) -> _Header:
    """Parse and validate the first :data:`HEADER_SIZE` bytes of a page file."""
    if len(raw) < HEADER_SIZE:
        raise CorruptSnapshotError("not a repro page file: truncated header")
    magic, version, _, slot_bytes, slot_count, next_id, meta_offset, meta_len = (
        _HEADER.unpack(raw[:_HEADER.size])
    )
    meta_crc, file_crc = _HEADER_CRCS.unpack_from(raw, _CRCS_OFFSET)
    if magic != MAGIC:
        raise CorruptSnapshotError("not a repro page file: bad magic")
    if version < 1:
        raise CorruptSnapshotError(f"corrupt page-file header: version {version}")
    if version == 1 and (meta_crc or file_crc):
        # Version-1 headers are zero-padded past the struct; non-zero CRC
        # words under a version-1 tag mean the version field itself was
        # corrupted on a checksummed file -- parsing v2 slots with the v1
        # layout would shift every payload by four bytes.
        raise CorruptSnapshotError(
            "corrupt page-file header: version/checksum disagreement"
        )
    if version > FORMAT_VERSION:
        raise PageStoreError(f"unsupported page-file version {version}")
    return _Header(version, slot_bytes, slot_count, next_id,
                   meta_offset, meta_len, meta_crc, file_crc)


def _read_header(handle: BinaryIO) -> _Header:
    """Parse a page-file header from an open handle."""
    handle.seek(0)
    return _parse_header(handle.read(HEADER_SIZE))


def _checked_decode(page_id: int, capacity: int, payload: bytes,
                    expected_crc: Optional[int]) -> Page:
    """Decode one slot payload, converting any failure into a structured error."""
    if expected_crc is not None and zlib.crc32(payload) != expected_crc:
        raise CorruptSnapshotError(
            f"page {page_id}: payload checksum mismatch "
            f"(stored {expected_crc:#010x}, computed {zlib.crc32(payload):#010x})"
        )
    try:
        return decode_page(page_id, capacity, payload)
    except Exception as exc:  # noqa: BLE001 - re-raised as a structured error
        raise CorruptSnapshotError(
            f"page {page_id}: payload does not decode ({type(exc).__name__}: {exc})"
        ) from exc


def _checked_meta(blob: bytes, header: _Header) -> Dict[str, Any]:
    """Parse the metadata blob, verifying its CRC on checksummed files."""
    if len(blob) < header.meta_len:
        raise CorruptSnapshotError("page file truncated inside the metadata blob")
    if header.version >= 2 and zlib.crc32(blob) != header.meta_crc:
        raise CorruptSnapshotError(
            f"metadata checksum mismatch (stored {header.meta_crc:#010x}, "
            f"computed {zlib.crc32(blob):#010x})"
        )
    try:
        meta = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptSnapshotError(f"metadata blob does not parse: {exc}") from exc
    if not isinstance(meta, dict):
        raise CorruptSnapshotError("metadata blob is not a JSON object")
    return meta


def _file_crc_of(handle: BinaryIO) -> int:
    """CRC-32 of the whole file with the file-CRC header word zeroed.

    The word's own bytes are excluded (treated as zero) so the checksum can
    live inside the region it covers.
    """
    handle.seek(0)
    head = bytearray(handle.read(HEADER_SIZE))
    if len(head) >= _FILE_CRC_OFFSET + 4:
        head[_FILE_CRC_OFFSET:_FILE_CRC_OFFSET + 4] = b"\x00\x00\x00\x00"
    crc = zlib.crc32(bytes(head))
    while True:
        chunk = handle.read(1 << 20)
        if not chunk:
            return crc
        crc = zlib.crc32(chunk, crc)


# ---------------------------------------------------------------------- #
# mmap (read-mostly serving)
# ---------------------------------------------------------------------- #
class MmapPageStore(PageStore):
    """Serve a snapshot through a memory-mapped, read-mostly view.

    Opening is O(header): pages are decoded lazily from the mapped buffer on
    first access, so a cold process starts answering queries without paying
    for a full deserialisation pass.  Live updates after opening go to an
    in-memory overlay; the snapshot file itself is never modified, which is
    what makes one snapshot safely shareable between serving processes.

    Concurrent-access guarantees (what :mod:`repro.serve` builds on):

    * **across processes** -- the file is mapped ``ACCESS_READ`` and never
      written through, so N processes mapping the same snapshot share one
      set of physical pages (the page cache) and cannot corrupt each other;
      opening is also O(header) per process, so worker fleets start cheap.
    * **within a process** -- :meth:`load_page` is stateless: it addresses
      the map with absolute offsets (``unpack_from`` / slicing, no shared
      file cursor) and decodes a *fresh* :class:`Page` from an immutable
      bytes copy, so concurrent reader threads are safe too
      (``thread_safe_reads``).
    """

    kind = "mmap"
    writable = False
    thread_safe_reads = True  # absolute-offset reads; no shared cursor

    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "rb")
        self._header = _read_header(self._file)
        self.format_version = self._header.version
        self._slot_header = _slot_header(self._header.version)
        self.slot_bytes = self._header.slot_bytes
        self._slot_count = self._header.slot_count
        self._next_id = self._header.next_id
        self._meta_offset = self._header.meta_offset
        self._meta_len = self._header.meta_len
        self._map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        self._overlay: Dict[int, Page] = {}
        self._deleted: Set[int] = set()
        self._meta_cache: Optional[Dict[str, Any]] = None

    def store_page(self, page: Page) -> None:
        self._overlay[page.page_id] = page
        self._deleted.discard(page.page_id)
        self._next_id = max(self._next_id, page.page_id + 1)

    def load_page(self, page_id: int) -> Page:
        if page_id in self._overlay:
            return self._overlay[page_id]
        if page_id in self._deleted or not 0 <= page_id < self._slot_count:
            raise KeyError(page_id)
        offset = HEADER_SIZE + page_id * self.slot_bytes
        try:
            fields = self._slot_header.unpack_from(self._map, offset)
        except struct.error as exc:
            raise CorruptSnapshotError(
                f"page file truncated inside slot {page_id}"
            ) from exc
        status, capacity, payload_len = fields[0], fields[1], fields[2]
        if status != _SLOT_LIVE:
            raise KeyError(page_id)
        payload_crc = fields[3] if self.format_version >= 2 else None
        start = offset + self._slot_header.size
        payload = bytes(self._map[start:start + payload_len])
        if len(payload) < payload_len:
            raise CorruptSnapshotError(f"page file truncated inside slot {page_id}")
        return _checked_decode(page_id, capacity, payload, payload_crc)

    def delete_page(self, page_id: int) -> None:
        self._overlay.pop(page_id, None)
        self._deleted.add(page_id)

    def page_ids(self) -> List[int]:
        ids = set(self._overlay)
        for slot in range(self._slot_count):
            if slot in ids or slot in self._deleted:
                continue
            status = self._map[HEADER_SIZE + slot * self.slot_bytes]
            if status == _SLOT_LIVE:
                ids.add(slot)
        return sorted(ids)

    def __contains__(self, page_id: int) -> bool:
        if page_id in self._overlay:
            return True
        if page_id in self._deleted or not 0 <= page_id < self._slot_count:
            return False
        return self._map[HEADER_SIZE + page_id * self.slot_bytes] == _SLOT_LIVE

    def next_page_id(self) -> int:
        return self._next_id

    def read_meta(self) -> Optional[Dict[str, Any]]:
        if self._meta_cache is not None:
            return self._meta_cache
        if self._meta_offset == 0 or self._meta_len == 0:
            return None
        blob = bytes(self._map[self._meta_offset:self._meta_offset + self._meta_len])
        self._meta_cache = _checked_meta(blob, self._header)
        return self._meta_cache

    def write_meta(self, meta: Dict[str, Any]) -> None:
        raise ReadOnlyStoreError(
            "mmap stores are read-mostly; save() the engine to a new path instead"
        )

    def close(self) -> None:
        self._map.close()
        self._file.close()


# ---------------------------------------------------------------------- #
# factories
# ---------------------------------------------------------------------- #
STORE_KINDS = ("memory", "file", "mmap")


def create_page_store(kind: str, path: Optional[str] = None,
                      slot_bytes: int = DEFAULT_SLOT_BYTES) -> PageStore:
    """A fresh, empty store for *building* a diagram.

    ``"mmap"`` is rejected here: it serves existing snapshots (use
    :func:`open_page_store`), it cannot host a build.
    """
    kind = kind.lower()
    if kind == "memory":
        return MemoryPageStore()
    if kind == "file":
        if not path:
            raise ValueError("the file page store needs a store_path")
        return FilePageStore.create(path, slot_bytes=slot_bytes)
    if kind == "mmap":
        raise ValueError(
            "the mmap store is read-mostly and cannot host a build; "
            "build with store='file' (or save a snapshot) and open it with mmap"
        )
    raise ValueError(f"unknown page store kind: {kind!r} (known: {', '.join(STORE_KINDS)})")


def open_page_store(kind: str, path: str, verify: bool = False) -> PageStore:
    """Open an existing snapshot file as a store of the requested kind.

    ``"memory"`` eagerly loads every page into a dict (fully in-memory
    serving); ``"file"`` and ``"mmap"`` stay lazy.  With ``verify=True`` the
    whole snapshot is checksummed (or structurally swept, for version-1
    files) before the store is returned, so corruption surfaces at open time
    as :class:`CorruptSnapshotError` rather than mid-query.
    """
    kind = kind.lower()
    if verify:
        verify_snapshot_file(path)
    if kind == "file":
        return FilePageStore.open(path)
    if kind == "mmap":
        return MmapPageStore(path)
    if kind == "memory":
        source = FilePageStore.open(path)
        try:
            memory = MemoryPageStore()
            for page_id in source.page_ids():
                memory.store_page(source.load_page(page_id))
            meta = source.read_meta()
            if meta is not None:
                memory.write_meta(meta)
            return memory
        finally:
            source.close()
    raise ValueError(f"unknown page store kind: {kind!r} (known: {', '.join(STORE_KINDS)})")


def verify_snapshot_file(path: str) -> None:
    """Check a snapshot file end to end; raise :class:`CorruptSnapshotError`.

    A *sealed* version-2 snapshot (nonzero whole-file CRC -- how every save
    finishes) is verified by a single streaming CRC pass over the file,
    which covers every header field, slot byte, and the metadata blob: any
    single flipped bit is caught.  Unsealed version-2 files and version-1
    files (no checksums) fall back to a structural sweep that decodes every
    live page (verifying per-page CRCs where present) and parses the
    metadata.
    """
    try:
        with open(path, "rb") as handle:
            header = _parse_header(handle.read(HEADER_SIZE))
            if header.version >= 2 and header.file_crc:
                actual = _file_crc_of(handle)
                if actual != header.file_crc:
                    raise CorruptSnapshotError(
                        f"whole-file checksum mismatch for {path} "
                        f"(stored {header.file_crc:#010x}, computed {actual:#010x})"
                    )
                return
    except OSError as exc:
        raise CorruptSnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    _sweep_snapshot(path)


def _sweep_snapshot(path: str) -> None:
    """Structurally decode every live page and the metadata of a snapshot."""
    try:
        store = FilePageStore.open(path)
    except (OSError, struct.error) as exc:
        raise CorruptSnapshotError(f"cannot open snapshot {path}: {exc}") from exc
    try:
        for page_id in store.page_ids():
            store.load_page(page_id)
        store.read_meta()
    except (struct.error, KeyError) as exc:
        raise CorruptSnapshotError(
            f"snapshot {path} is structurally inconsistent: {exc}"
        ) from exc
    finally:
        store.close()


def write_snapshot_file(path: str, pages: Iterable[Page], meta: Dict[str, Any],
                        slot_bytes: Optional[int] = None,
                        next_page_id: Optional[int] = None) -> None:
    """Write a complete snapshot (pages + meta) to ``path`` in one pass.

    Slots are auto-sized to the largest encoded page when ``slot_bytes`` is
    omitted, so saving never fails on an oversized page the way a live
    fixed-slot store can.  ``next_page_id`` preserves the source allocator's
    cursor so ids of freed pages are not handed out again after reopening.
    """
    encoded: List[Tuple[int, int, bytes]] = [
        (page.page_id, page.capacity, encode_page(page)) for page in pages
    ]
    if slot_bytes is None:
        largest = max((len(blob) for _, _, blob in encoded), default=0)
        slot_bytes = max(DEFAULT_SLOT_BYTES, _SLOT_HEADER_V2.size + largest)
    for page_id, _, blob in encoded:
        if _SLOT_HEADER_V2.size + len(blob) > slot_bytes:
            raise PageOverflowError(
                f"page {page_id} does not fit in {slot_bytes}-byte slots"
            )
    # All ids are known up front, so the slot region is laid out in one
    # sequential pass: empty header-sized gaps for missing ids, one write per
    # slot, no per-page header rewrites.
    store = FilePageStore.create(path, slot_bytes=slot_bytes)
    try:
        by_id = {page_id: (capacity, blob) for page_id, capacity, blob in encoded}
        slot_count = max(by_id, default=-1) + 1
        # Empty slots (freed page ids) are seeked over, not written: their
        # zero bytes read back as _SLOT_EMPTY and the filesystem can keep
        # them as holes, so churned id spaces don't inflate the on-disk size.
        store._file.truncate(HEADER_SIZE + slot_count * slot_bytes)
        for page_id in sorted(by_id):
            capacity, blob = by_id[page_id]
            store._file.seek(HEADER_SIZE + page_id * slot_bytes)
            store._file.write(_SLOT_HEADER_V2.pack(_SLOT_LIVE, capacity, len(blob),
                                                   zlib.crc32(blob)))
            store._file.write(blob)
            store._capacities[page_id] = capacity
        store._slot_count = slot_count
        store._next_id = max(slot_count, next_page_id or 0)
        store.write_meta(meta)
    finally:
        store.close()
