"""I/O and timing statistics counters.

The counters are deliberately tiny value objects so they can be embedded in
both indexes and reset/snapshotted around individual queries, which is how
the per-query I/O numbers of Figure 6(b) are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class IOStats:
    """Mutable I/O counters for a simulated disk.

    ``cache_hits`` / ``cache_misses`` track the integrated buffer pool (see
    :class:`~repro.storage.disk.DiskManager`): a hit serves a page without a
    counted read, a miss counts one read.  Both stay zero when no pool is
    configured.
    """

    page_reads: int = 0
    page_writes: int = 0
    pages_allocated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def reset(self) -> None:
        """Zero the access counters (allocation counts are preserved)."""
        self.page_reads = 0
        self.page_writes = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(
            self.page_reads,
            self.page_writes,
            self.pages_allocated,
            self.cache_hits,
            self.cache_misses,
        )

    def delta(self, before: "IOStats") -> "IOStats":
        """Counters accumulated since ``before`` was snapshotted."""
        return IOStats(
            self.page_reads - before.page_reads,
            self.page_writes - before.page_writes,
            self.pages_allocated - before.pages_allocated,
            self.cache_hits - before.cache_hits,
            self.cache_misses - before.cache_misses,
        )

    @property
    def total_io(self) -> int:
        """Reads plus writes."""
        return self.page_reads + self.page_writes

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of buffer-pool requests served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view, convenient for report tables."""
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "pages_allocated": self.pages_allocated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    #: JSON-compatible state (alias of :meth:`as_dict`, wire-protocol naming).
    to_dict = as_dict

    @classmethod
    def from_dict(cls, state: Dict[str, int]) -> "IOStats":
        """Rebuild counters from :meth:`as_dict` output."""
        return cls(
            page_reads=int(state.get("page_reads", 0)),
            page_writes=int(state.get("page_writes", 0)),
            pages_allocated=int(state.get("pages_allocated", 0)),
            cache_hits=int(state.get("cache_hits", 0)),
            cache_misses=int(state.get("cache_misses", 0)),
        )


@dataclass
class TimingBreakdown:
    """Named wall-clock buckets (seconds), e.g. the components of Figure 6(c)."""

    buckets: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the named bucket."""
        self.buckets[name] = self.buckets.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        """Total seconds recorded for ``name`` (zero when absent)."""
        return self.buckets.get(name, 0.0)

    def total(self) -> float:
        """Sum of all buckets."""
        return sum(self.buckets.values())

    def fractions(self) -> Dict[str, float]:
        """Each bucket as a fraction of the total (empty dict when total is zero)."""
        total = self.total()
        if total <= 0:
            return {}
        return {name: value / total for name, value in self.buckets.items()}

    def merge(self, other: "TimingBreakdown") -> None:
        """Add all buckets of ``other`` into this breakdown."""
        for name, value in other.buckets.items():
            self.add(name, value)

    def to_dict(self) -> Dict[str, float]:
        """JSON-compatible state: a copy of the bucket mapping."""
        return dict(self.buckets)

    @classmethod
    def from_dict(cls, state: Dict[str, float]) -> "TimingBreakdown":
        """Rebuild a breakdown from :meth:`to_dict` output."""
        return cls(buckets={name: float(value) for name, value in state.items()})
