"""Attribute-uncertainty model: uncertainty regions and pdfs.

An uncertain object (Section III of the paper) is a closed circular
*uncertainty region* plus a probability density function (pdf) bounded within
it.  The paper's experiments use a truncated Gaussian pdf discretised into 20
histogram bars; this package supports uniform, truncated-Gaussian, and
arbitrary histogram pdfs, plus the distance distributions needed to compute
qualification probabilities.
"""

from repro.uncertain.pdf import (
    UncertaintyPdf,
    UniformPdf,
    TruncatedGaussianPdf,
    HistogramPdf,
)
from repro.uncertain.objects import UncertainObject
from repro.uncertain.distance_distribution import DistanceDistribution

__all__ = [
    "UncertaintyPdf",
    "UniformPdf",
    "TruncatedGaussianPdf",
    "HistogramPdf",
    "UncertainObject",
    "DistanceDistribution",
]
