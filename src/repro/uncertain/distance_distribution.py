"""Distance distributions between a query point and an uncertain object.

Qualification probabilities of a PNN answer (Section VI-A cites the
numerical-integration method of Cheng et al., TKDE'04) are computed from the
distribution of ``dist(q, X_i)`` where ``X_i`` is the uncertain position of
object ``O_i``.  For the radially-symmetric pdfs used in this library the
distribution can be evaluated by a one-dimensional integral:

    P(dist(q, X) <= r) = integral over s in [0, R] of f_radial(s) * coverage(s, d, r) ds

where ``d = dist(q, c)`` and ``coverage(s, d, r)`` is the fraction of the
circle of radius ``s`` around the object's centre that lies within distance
``r`` of ``q`` (a closed-form arc fraction).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.geometry.point import Point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.uncertain.objects import UncertainObject


def _ring_coverage(ring_radius: float, center_distance: float, query_radius: float) -> float:
    """Fraction of the circle of radius ``ring_radius`` within ``query_radius`` of the query.

    The circle is centred at the object's centre, which lies ``center_distance``
    away from the query point.
    """
    if query_radius <= 0:
        return 0.0
    # repro-lint: ignore[float-eq] -- exact zero (a point ring) guards the acos argument division
    if ring_radius == 0.0:
        return 1.0 if center_distance <= query_radius else 0.0
    # repro-lint: ignore[float-eq] -- exact zero (query at the centre) guards the same division
    if center_distance == 0.0:
        return 1.0 if ring_radius <= query_radius else 0.0
    # Whole ring inside / outside the query disk.
    if center_distance + ring_radius <= query_radius:
        return 1.0
    if abs(center_distance - ring_radius) >= query_radius:
        return 0.0
    cos_angle = (
        ring_radius ** 2 + center_distance ** 2 - query_radius ** 2
    ) / (2.0 * ring_radius * center_distance)
    cos_angle = max(-1.0, min(1.0, cos_angle))
    return math.acos(cos_angle) / math.pi


def coverage_array(ring_radii, center_distances, query_radii) -> np.ndarray:
    """Broadcasted ring coverage: the array form of :func:`_ring_coverage`.

    All three arguments may be arrays of mutually broadcastable shapes (ring
    radius ``s``, centre distance ``d``, query radius ``r``); the result has
    the broadcast shape.  The piecewise cases mirror the scalar function
    exactly: whole-ring-inside, whole-ring-outside, the arc fraction in
    between, and the degenerate zero-radius ring / centred-query indicators.
    """
    s = np.asarray(ring_radii, dtype=float)
    d = np.asarray(center_distances, dtype=float)
    r = np.asarray(query_radii, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        cos_angle = (s * s + d * d - r * r) / (2.0 * s * d)
        partial = np.arccos(np.clip(cos_angle, -1.0, 1.0)) / math.pi
    result = np.where((d + s) <= r, 1.0, np.where(np.abs(d - s) >= r, 0.0, partial))
    # The masks mirror the scalar degenerate guards: exactly-zero entries are
    # the ones whose division above produced nan/inf.
    # repro-lint: ignore[float-eq] -- exact-zero mask replaces the divide-by-zero rows
    result = np.where(s == 0.0, (d <= r).astype(float), result)
    # repro-lint: ignore[float-eq] -- exact-zero mask replaces the divide-by-zero rows
    result = np.where(d == 0.0, (s <= r).astype(float), result)
    return np.where(r <= 0.0, 0.0, result)


def ring_coverage_matrix(mids, center_distance: float, radii) -> np.ndarray:
    """The ``(rings, len(radii))`` coverage matrix of one object at one query."""
    s = np.asarray(mids, dtype=float)[:, None]
    r = np.asarray(radii, dtype=float)[None, :]
    return coverage_array(s, float(center_distance), r)


def ring_profile(obj: "UncertainObject", rings: int) -> Tuple[np.ndarray, np.ndarray]:
    """Query-independent ``(masses, midpoints)`` of ``rings`` equal-width rings.

    The profile depends only on the object's pdf, so it can be computed once
    and shared across every query that touches the object (see
    :class:`repro.queries.probability_kernel.RingCache`).  Zero-radius
    objects get all mass in a single ring at the centre, padded to ``rings``
    entries so profiles stack into rectangular matrices.
    """
    if rings < 1:
        raise ValueError("rings must be positive")
    radius = obj.radius
    # repro-lint: ignore[float-eq] -- exact zero (a point object) guards the ring-edge division
    if radius == 0.0:
        masses = np.zeros(rings)
        masses[0] = 1.0
        return masses, np.zeros(rings)
    edges = radius * np.arange(rings + 1) / rings
    cdf_values = obj.pdf.radial_cdf_many(edges)
    masses = np.maximum(0.0, np.diff(cdf_values))
    midpoints = (edges[:-1] + edges[1:]) / 2.0
    return masses, midpoints


class DistanceDistribution:
    """Distribution of the distance between a fixed query point and an uncertain object.

    Args:
        obj: the uncertain object.
        query: the query point ``q``.
        rings: number of radial integration rings (accuracy/cost trade-off).
        profile: optional precomputed ``(masses, midpoints)`` pair from
            :func:`ring_profile` (query-independent, so it can be shared
            across queries); computed on the fly when omitted.
    """

    def __init__(
        self,
        obj: "UncertainObject",
        query: Point,
        rings: int = 64,
        profile: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ):
        if rings < 1:
            raise ValueError("rings must be positive")
        self.obj = obj
        self.query = query
        self.rings = rings
        self.center_distance = query.distance_to(obj.center)
        self.lower = obj.min_distance(query)
        self.upper = obj.max_distance(query)
        if profile is None:
            profile = ring_profile(obj, rings)
        self._masses_arr, self._midpoints_arr = profile
        # Plain-float views for the scalar integration loop in cdf().
        self._ring_masses: List[float] = self._masses_arr.tolist()
        self._ring_midpoints: List[float] = self._midpoints_arr.tolist()

    # ------------------------------------------------------------------ #
    # distribution interface
    # ------------------------------------------------------------------ #
    def support(self) -> tuple:
        """Return ``(distmin, distmax)``: the support of the distance."""
        return (self.lower, self.upper)

    def cdf(self, r: float) -> float:
        """Probability that the object lies within distance ``r`` of the query."""
        if r < self.lower:
            return 0.0
        if r >= self.upper:
            return 1.0
        # r in [lower, upper): direct ring integration.  The r == lower
        # boundary is evaluated explicitly (no mass lies strictly below the
        # minimum distance, so the sum is exact there too).
        total = 0.0
        for mass, mid in zip(self._ring_masses, self._ring_midpoints):
            # repro-lint: ignore[float-eq] -- exact zero skips padding rings; any nonzero mass must count
            if mass == 0.0:
                continue
            total += mass * _ring_coverage(mid, self.center_distance, r)
        return min(1.0, max(0.0, total))

    def cdf_many(self, radii) -> np.ndarray:
        """Vectorized :meth:`cdf` over an array of query radii.

        One broadcasted ``(rings, len(radii))`` coverage matrix replaces the
        per-radius Python loop; the support boundaries are applied exactly as
        in the scalar evaluation.
        """
        r = np.asarray(radii, dtype=float)
        raw = self._masses_arr @ ring_coverage_matrix(
            self._midpoints_arr, self.center_distance, r
        )
        interior = np.minimum(1.0, np.maximum(0.0, raw))
        return np.where(r < self.lower, 0.0, np.where(r >= self.upper, 1.0, interior))

    def survival(self, r: float) -> float:
        """Probability that the object lies farther than ``r`` from the query."""
        return 1.0 - self.cdf(r)

    def pdf(self, r: float, dr: float = None) -> float:
        """Numerical density of the distance at ``r``."""
        if r < self.lower or r > self.upper:
            return 0.0
        if dr is None:
            span = max(self.upper - self.lower, 1e-9)
            dr = span / 1000.0
        lo = max(self.lower, r - dr)
        hi = min(self.upper, r + dr)
        if hi <= lo:
            return 0.0
        return (self.cdf(hi) - self.cdf(lo)) / (hi - lo)

    def mean(self, samples: int = 200) -> float:
        """Approximate mean distance via the layer-cake formula."""
        lo, hi = self.lower, self.upper
        if hi <= lo:
            return lo
        step = (hi - lo) / samples
        # E[D] = lo + integral of survival over [lo, hi].
        total = 0.0
        for i in range(samples):
            r = lo + (i + 0.5) * step
            total += self.survival(r) * step
        return lo + total
