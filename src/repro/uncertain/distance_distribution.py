"""Distance distributions between a query point and an uncertain object.

Qualification probabilities of a PNN answer (Section VI-A cites the
numerical-integration method of Cheng et al., TKDE'04) are computed from the
distribution of ``dist(q, X_i)`` where ``X_i`` is the uncertain position of
object ``O_i``.  For the radially-symmetric pdfs used in this library the
distribution can be evaluated by a one-dimensional integral:

    P(dist(q, X) <= r) = integral over s in [0, R] of f_radial(s) * coverage(s, d, r) ds

where ``d = dist(q, c)`` and ``coverage(s, d, r)`` is the fraction of the
circle of radius ``s`` around the object's centre that lies within distance
``r`` of ``q`` (a closed-form arc fraction).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List

from repro.geometry.point import Point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.uncertain.objects import UncertainObject


def _ring_coverage(ring_radius: float, center_distance: float, query_radius: float) -> float:
    """Fraction of the circle of radius ``ring_radius`` within ``query_radius`` of the query.

    The circle is centred at the object's centre, which lies ``center_distance``
    away from the query point.
    """
    if query_radius <= 0:
        return 0.0
    if ring_radius == 0.0:
        return 1.0 if center_distance <= query_radius else 0.0
    if center_distance == 0.0:
        return 1.0 if ring_radius <= query_radius else 0.0
    # Whole ring inside / outside the query disk.
    if center_distance + ring_radius <= query_radius:
        return 1.0
    if abs(center_distance - ring_radius) >= query_radius:
        return 0.0
    cos_angle = (
        ring_radius ** 2 + center_distance ** 2 - query_radius ** 2
    ) / (2.0 * ring_radius * center_distance)
    cos_angle = max(-1.0, min(1.0, cos_angle))
    return math.acos(cos_angle) / math.pi


class DistanceDistribution:
    """Distribution of the distance between a fixed query point and an uncertain object.

    Args:
        obj: the uncertain object.
        query: the query point ``q``.
        rings: number of radial integration rings (accuracy/cost trade-off).
    """

    def __init__(self, obj: "UncertainObject", query: Point, rings: int = 64):
        if rings < 1:
            raise ValueError("rings must be positive")
        self.obj = obj
        self.query = query
        self.rings = rings
        self.center_distance = query.distance_to(obj.center)
        self.lower = obj.min_distance(query)
        self.upper = obj.max_distance(query)
        self._ring_masses: List[float] = []
        self._ring_midpoints: List[float] = []
        self._prepare_rings()

    def _prepare_rings(self) -> None:
        radius = self.obj.radius
        if radius == 0.0:
            self._ring_masses = [1.0]
            self._ring_midpoints = [0.0]
            return
        edges = [radius * i / self.rings for i in range(self.rings + 1)]
        cdf_values = [self.obj.pdf.radial_cdf(edge) for edge in edges]
        for i in range(self.rings):
            mass = max(0.0, cdf_values[i + 1] - cdf_values[i])
            self._ring_masses.append(mass)
            self._ring_midpoints.append((edges[i] + edges[i + 1]) / 2.0)

    # ------------------------------------------------------------------ #
    # distribution interface
    # ------------------------------------------------------------------ #
    def support(self) -> tuple:
        """Return ``(distmin, distmax)``: the support of the distance."""
        return (self.lower, self.upper)

    def cdf(self, r: float) -> float:
        """Probability that the object lies within distance ``r`` of the query."""
        if r <= self.lower:
            return 0.0 if r < self.lower else self.cdf(self.lower + 1e-12)
        if r >= self.upper:
            return 1.0
        total = 0.0
        for mass, mid in zip(self._ring_masses, self._ring_midpoints):
            if mass == 0.0:
                continue
            total += mass * _ring_coverage(mid, self.center_distance, r)
        return min(1.0, max(0.0, total))

    def survival(self, r: float) -> float:
        """Probability that the object lies farther than ``r`` from the query."""
        return 1.0 - self.cdf(r)

    def pdf(self, r: float, dr: float = None) -> float:
        """Numerical density of the distance at ``r``."""
        if r < self.lower or r > self.upper:
            return 0.0
        if dr is None:
            span = max(self.upper - self.lower, 1e-9)
            dr = span / 1000.0
        lo = max(self.lower, r - dr)
        hi = min(self.upper, r + dr)
        if hi <= lo:
            return 0.0
        return (self.cdf(hi) - self.cdf(lo)) / (hi - lo)

    def mean(self, samples: int = 200) -> float:
        """Approximate mean distance via the layer-cake formula."""
        lo, hi = self.lower, self.upper
        if hi <= lo:
            return lo
        step = (hi - lo) / samples
        # E[D] = lo + integral of survival over [lo, hi].
        total = 0.0
        for i in range(samples):
            r = lo + (i + 0.5) * step
            total += self.survival(r) * step
        return lo + total
