"""Uncertain objects: circular uncertainty region + pdf.

An :class:`UncertainObject` is the unit the UV-diagram is built over.  It
bundles an object identifier, the uncertainty circle ``(c_i, r_i)`` and a
pdf over that circle, and exposes the distance bounds (Equations 2 and 3)
used by every pruning rule in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.pdf import TruncatedGaussianPdf, UncertaintyPdf, UniformPdf


@dataclass
class UncertainObject:
    """A two-dimensional uncertain object.

    Attributes:
        oid: integer object identifier (``O_i`` in the paper).
        region: circular uncertainty region ``Cir(c_i, r_i)``.
        pdf: probability density over the region.  Defaults to the paper's
            truncated Gaussian with ``sigma = diameter / 6``.
    """

    oid: int
    region: Circle
    pdf: UncertaintyPdf = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.pdf is None:
            self.pdf = TruncatedGaussianPdf(self.region.radius)
        if abs(self.pdf.radius - self.region.radius) > 1e-9:
            raise ValueError(
                f"pdf radius {self.pdf.radius} does not match region radius {self.region.radius}"
            )

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def point_object(oid: int, location: Point) -> "UncertainObject":
        """An object with zero uncertainty (the classic Voronoi special case)."""
        return UncertainObject(oid, Circle(location, 0.0), UniformPdf(0.0))

    @staticmethod
    def uniform(oid: int, center: Point, radius: float) -> "UncertainObject":
        """An object with a uniform pdf over its circular region."""
        return UncertainObject(oid, Circle(center, radius), UniformPdf(radius))

    @staticmethod
    def gaussian(
        oid: int, center: Point, radius: float, sigma: Optional[float] = None
    ) -> "UncertainObject":
        """An object with the paper's truncated-Gaussian pdf."""
        return UncertainObject(
            oid, Circle(center, radius), TruncatedGaussianPdf(radius, sigma)
        )

    @staticmethod
    def from_samples(
        oid: int, samples: "list[Point]", pdf: Optional[UncertaintyPdf] = None
    ) -> "UncertainObject":
        """Build an object from a non-circular uncertainty region.

        Section III-C of the paper handles non-circular regions by converting
        them to the circle that minimally contains them; the resulting
        UV-diagram is a conservative approximation (cells can only grow).
        ``samples`` are boundary or interior points describing the original
        region (e.g. polygon vertices); ``pdf`` defaults to a uniform
        distribution over the bounding circle.
        """
        from repro.geometry.circle import min_bounding_circle

        mbc = min_bounding_circle(samples)
        if pdf is None:
            pdf = UniformPdf(mbc.radius)
        return UncertainObject(oid, mbc, pdf)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def center(self) -> Point:
        """Centre ``c_i`` of the uncertainty region."""
        return self.region.center

    @property
    def radius(self) -> float:
        """Radius ``r_i`` of the uncertainty region."""
        return self.region.radius

    def mbc(self) -> Circle:
        """Minimum bounding circle of the uncertainty region.

        For circular regions this is the region itself; the UV-index stores
        it with every leaf entry (Section V-A).
        """
        return self.region

    def mbr(self) -> Rect:
        """Minimum bounding rectangle, used by the R-tree substrate."""
        xmin, ymin, xmax, ymax = self.region.bounding_box()
        return Rect(xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------ #
    # distances (Equations 2 and 3)
    # ------------------------------------------------------------------ #
    def min_distance(self, q: Point) -> float:
        """``distmin(O_i, q)``: zero when ``q`` is inside the region."""
        return self.region.min_distance(q)

    def max_distance(self, q: Point) -> float:
        """``distmax(O_i, q)``."""
        return self.region.max_distance(q)

    # ------------------------------------------------------------------ #
    # probability support
    # ------------------------------------------------------------------ #
    def distance_cdf(self, q: Point, r: float) -> float:
        """Probability that the object's true position is within ``r`` of ``q``.

        Exact for radially symmetric pdfs when ``q`` coincides with the
        centre; otherwise computed by numerically integrating the pdf over
        the intersection of the disk ``Cir(q, r)`` with the uncertainty
        region (see :mod:`repro.uncertain.distance_distribution`).
        """
        from repro.uncertain.distance_distribution import DistanceDistribution

        return DistanceDistribution(self, q).cdf(r)

    def sample_positions(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` possible positions of the object, as an ``(count, 2)`` array."""
        offsets = self.pdf.sample_offsets(count, rng)
        return offsets + np.array([self.center.x, self.center.y])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"UncertainObject(oid={self.oid}, center=({self.center.x:.2f}, "
            f"{self.center.y:.2f}), radius={self.radius:.2f})"
        )
