"""Probability density functions over circular uncertainty regions.

Every pdf is defined relative to the object's uncertainty circle: positions
are expressed as offsets from the circle centre, and the density integrates
to one over the disk.  Three families are provided:

* :class:`UniformPdf` -- constant density over the disk,
* :class:`TruncatedGaussianPdf` -- the paper's experimental pdf: an isotropic
  Gaussian centred at the circle centre with standard deviation one sixth of
  the diameter, truncated to the disk and renormalised,
* :class:`HistogramPdf` -- a ring histogram ("20 histogram bars" in the
  paper) that can approximate any radially symmetric density.

All pdfs expose the two operations query processing needs: radial mass
(probability that the object lies within radius ``r`` of its centre) and
Monte-Carlo sampling of positions.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.point import Point


class UncertaintyPdf(ABC):
    """Abstract pdf over a disk of radius ``radius`` centred at the origin."""

    def __init__(self, radius: float):
        if radius < 0:
            raise ValueError("pdf radius must be non-negative")
        self.radius = float(radius)

    # ------------------------------------------------------------------ #
    # interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def radial_cdf(self, r: float) -> float:
        """Probability that the object lies within distance ``r`` of its centre."""

    @abstractmethod
    def density(self, offset: Point) -> float:
        """Density at ``offset`` from the centre (zero outside the disk)."""

    @abstractmethod
    def sample_offsets(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` position offsets, returned as an ``(count, 2)`` array."""

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def radial_cdf_many(self, radii: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`radial_cdf` over an array of radii.

        The built-in families override this with closed-form array
        expressions; the fallback evaluates the scalar cdf per element so
        user-defined pdfs stay correct without extra work.
        """
        r = np.asarray(radii, dtype=float)
        return np.array([self.radial_cdf(float(value)) for value in r.ravel()]).reshape(
            r.shape
        )

    def radial_pdf(self, r: float, dr: float = 1e-4) -> float:
        """Numerical derivative of :meth:`radial_cdf` (density of the radius)."""
        if r < 0:
            return 0.0
        lo = max(0.0, r - dr)
        hi = min(self.radius, r + dr) if self.radius > 0 else r + dr
        if hi <= lo:
            return 0.0
        return (self.radial_cdf(hi) - self.radial_cdf(lo)) / (hi - lo)

    def to_histogram(self, bars: int = 20) -> "HistogramPdf":
        """Discretise this pdf into a ring histogram with ``bars`` bars.

        The paper stores each uncertainty pdf as 20 histogram bars; this
        conversion is what the dataset generators use before indexing.
        """
        if self.radius == 0:
            return HistogramPdf(0.0, [1.0])
        edges = [self.radius * i / bars for i in range(bars + 1)]
        masses = [
            max(0.0, self.radial_cdf(edges[i + 1]) - self.radial_cdf(edges[i]))
            for i in range(bars)
        ]
        return HistogramPdf(self.radius, masses)


class UniformPdf(UncertaintyPdf):
    """Uniform density over the disk."""

    def radial_cdf(self, r: float) -> float:
        if self.radius == 0:
            return 1.0 if r >= 0 else 0.0
        if r <= 0:
            return 0.0
        if r >= self.radius:
            return 1.0
        return (r / self.radius) ** 2

    def radial_cdf_many(self, radii: np.ndarray) -> np.ndarray:
        r = np.asarray(radii, dtype=float)
        if self.radius == 0:
            return (r >= 0.0).astype(float)
        return np.where(
            r <= 0.0, 0.0, np.where(r >= self.radius, 1.0, (r / self.radius) ** 2)
        )

    def density(self, offset: Point) -> float:
        if self.radius == 0:
            return math.inf if offset.norm() == 0 else 0.0
        if offset.norm() > self.radius:
            return 0.0
        return 1.0 / (math.pi * self.radius * self.radius)

    def sample_offsets(self, count: int, rng: np.random.Generator) -> np.ndarray:
        radii = self.radius * np.sqrt(rng.random(count))
        angles = rng.random(count) * 2.0 * math.pi
        return np.column_stack((radii * np.cos(angles), radii * np.sin(angles)))


class TruncatedGaussianPdf(UncertaintyPdf):
    """Isotropic Gaussian truncated to the disk and renormalised.

    Args:
        radius: radius of the uncertainty region.
        sigma: standard deviation of each coordinate.  The paper uses
            ``sigma = diameter / 6`` (i.e. ``radius / 3``), which is the
            default when ``sigma`` is omitted.
    """

    def __init__(self, radius: float, sigma: Optional[float] = None):
        super().__init__(radius)
        if sigma is None:
            sigma = radius / 3.0 if radius > 0 else 1.0
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.sigma = float(sigma)
        # Mass of the untruncated Gaussian inside the disk, for normalisation:
        # P(R <= r) = 1 - exp(-r^2 / (2 sigma^2)) for a 2-D isotropic Gaussian.
        self._inside_mass = 1.0 - math.exp(
            -(self.radius ** 2) / (2.0 * self.sigma ** 2)
        ) if radius > 0 else 1.0

    def radial_cdf(self, r: float) -> float:
        if self.radius == 0:
            return 1.0 if r >= 0 else 0.0
        if r <= 0:
            return 0.0
        if r >= self.radius:
            return 1.0
        raw = 1.0 - math.exp(-(r ** 2) / (2.0 * self.sigma ** 2))
        return raw / self._inside_mass

    def radial_cdf_many(self, radii: np.ndarray) -> np.ndarray:
        r = np.asarray(radii, dtype=float)
        if self.radius == 0:
            return (r >= 0.0).astype(float)
        raw = 1.0 - np.exp(-(r ** 2) / (2.0 * self.sigma ** 2))
        return np.where(
            r <= 0.0, 0.0, np.where(r >= self.radius, 1.0, raw / self._inside_mass)
        )

    def density(self, offset: Point) -> float:
        if self.radius == 0:
            return math.inf if offset.norm() == 0 else 0.0
        dist = offset.norm()
        if dist > self.radius:
            return 0.0
        raw = math.exp(-(dist ** 2) / (2.0 * self.sigma ** 2)) / (
            2.0 * math.pi * self.sigma ** 2
        )
        return raw / self._inside_mass

    def sample_offsets(self, count: int, rng: np.random.Generator) -> np.ndarray:
        # Rejection-free sampling via the inverse radial CDF, then a uniform angle.
        u = rng.random(count)
        radii = np.sqrt(-2.0 * self.sigma ** 2 * np.log(1.0 - u * self._inside_mass))
        if self.radius > 0:
            radii = np.minimum(radii, self.radius)
        angles = rng.random(count) * 2.0 * math.pi
        return np.column_stack((radii * np.cos(angles), radii * np.sin(angles)))


class HistogramPdf(UncertaintyPdf):
    """Ring histogram pdf: probability mass per concentric ring.

    Args:
        radius: radius of the uncertainty region.
        masses: probability mass of each of the ``len(masses)`` equal-width
            rings, ordered from the centre outwards.  The masses are
            normalised to sum to one.
    """

    def __init__(self, radius: float, masses: Sequence[float]):
        super().__init__(radius)
        if not masses:
            raise ValueError("histogram needs at least one bar")
        if any(m < 0 for m in masses):
            raise ValueError("histogram masses must be non-negative")
        total = float(sum(masses))
        if total <= 0:
            raise ValueError("histogram masses must not all be zero")
        self.masses: List[float] = [m / total for m in masses]
        self.bars = len(self.masses)

    def _ring_edges(self, index: int) -> tuple:
        width = self.radius / self.bars if self.bars else 0.0
        return (index * width, (index + 1) * width)

    def radial_cdf(self, r: float) -> float:
        if self.radius == 0:
            return 1.0 if r >= 0 else 0.0
        if r <= 0:
            return 0.0
        if r >= self.radius:
            return 1.0
        width = self.radius / self.bars
        full_bars = int(r // width)
        cdf = sum(self.masses[:full_bars])
        inner, outer = self._ring_edges(full_bars)
        ring_area = outer ** 2 - inner ** 2
        if ring_area > 0:
            partial_area = r ** 2 - inner ** 2
            cdf += self.masses[full_bars] * partial_area / ring_area
        return min(1.0, cdf)

    def radial_cdf_many(self, radii: np.ndarray) -> np.ndarray:
        r = np.asarray(radii, dtype=float)
        if self.radius == 0:
            return (r >= 0.0).astype(float)
        width = self.radius / self.bars
        masses = np.asarray(self.masses)
        cumulative = np.concatenate(([0.0], np.cumsum(masses)))
        full_bars = np.clip((r // width).astype(int), 0, self.bars - 1)
        inner = full_bars * width
        outer = inner + width
        ring_area = outer ** 2 - inner ** 2
        with np.errstate(divide="ignore", invalid="ignore"):
            partial = masses[full_bars] * (r ** 2 - inner ** 2) / ring_area
        interior = np.minimum(
            1.0, cumulative[full_bars] + np.where(ring_area > 0, partial, 0.0)
        )
        return np.where(r <= 0.0, 0.0, np.where(r >= self.radius, 1.0, interior))

    def density(self, offset: Point) -> float:
        if self.radius == 0:
            return math.inf if offset.norm() == 0 else 0.0
        dist = offset.norm()
        if dist > self.radius:
            return 0.0
        width = self.radius / self.bars
        index = min(int(dist // width), self.bars - 1)
        inner, outer = self._ring_edges(index)
        ring_area = math.pi * (outer ** 2 - inner ** 2)
        if ring_area == 0:
            return 0.0
        return self.masses[index] / ring_area

    def sample_offsets(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if self.radius == 0:
            return np.zeros((count, 2))
        bar_indices = rng.choice(self.bars, size=count, p=self.masses)
        width = self.radius / self.bars
        inner = bar_indices * width
        outer = inner + width
        # Sample radius uniformly by area within the chosen ring.
        u = rng.random(count)
        radii = np.sqrt(inner ** 2 + u * (outer ** 2 - inner ** 2))
        angles = rng.random(count) * 2.0 * math.pi
        return np.column_stack((radii * np.cos(angles), radii * np.sin(angles)))
