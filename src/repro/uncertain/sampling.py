"""Monte-Carlo utilities over uncertain objects.

Kriegel et al. (DASFAA'07) estimate PNN qualification probabilities by
sampling possible worlds; this module provides the possible-world sampler
used both by that estimator (:mod:`repro.queries.probability`) and by the
test-suite as an independent cross-check of the numerical integration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.uncertain.objects import UncertainObject


def sample_possible_world(
    objects: Sequence[UncertainObject], rng: np.random.Generator
) -> List[Point]:
    """Draw one concrete position for every object (one possible world)."""
    positions = []
    for obj in objects:
        offset = obj.pdf.sample_offsets(1, rng)[0]
        positions.append(Point(obj.center.x + offset[0], obj.center.y + offset[1]))
    return positions


def estimate_nn_probabilities(
    objects: Sequence[UncertainObject],
    query: Point,
    worlds: int = 2000,
    rng: np.random.Generator | None = None,
) -> Dict[int, float]:
    """Estimate each object's probability of being the query's nearest neighbour.

    Args:
        objects: candidate objects (typically a PNN answer candidate set).
        query: the query point.
        worlds: number of possible worlds to sample.
        rng: optional random generator (defaults to a fixed seed for
            reproducibility).

    Returns:
        Mapping from object id to estimated qualification probability.  The
        probabilities of the supplied objects sum to one.
    """
    if not objects:
        return {}
    if rng is None:
        rng = np.random.default_rng(0)

    query_xy = np.array([query.x, query.y])
    wins = {obj.oid: 0 for obj in objects}
    # Vectorised: sample all worlds for each object at once.
    samples = {
        obj.oid: obj.sample_positions(worlds, rng) for obj in objects
    }
    distance_matrix = np.column_stack(
        [np.linalg.norm(samples[obj.oid] - query_xy, axis=1) for obj in objects]
    )
    winners = np.argmin(distance_matrix, axis=1)
    for world_winner in winners:
        wins[objects[int(world_winner)].oid] += 1
    return {oid: count / worlds for oid, count in wins.items()}


def empirical_distance_quantiles(
    obj: UncertainObject,
    query: Point,
    quantiles: Iterable[float],
    samples: int = 5000,
    rng: np.random.Generator | None = None,
) -> List[float]:
    """Empirical quantiles of ``dist(q, X)``; used to validate the analytic CDF."""
    if rng is None:
        rng = np.random.default_rng(0)
    positions = obj.sample_positions(samples, rng)
    dists = np.linalg.norm(positions - np.array([query.x, query.y]), axis=1)
    return [float(np.quantile(dists, q)) for q in quantiles]
