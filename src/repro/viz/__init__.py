"""Visualisation helpers (dependency-free SVG rendering).

The UV-diagram is as much an analysis artefact as an index (Figures 1 and 2
of the paper are drawings of it); this package renders datasets, UV-cells,
the adaptive-grid leaves, and query results to standalone SVG files without
requiring any plotting library.
"""

from repro.viz.svg import SvgCanvas, render_uv_diagram

__all__ = ["SvgCanvas", "render_uv_diagram"]
