"""Dependency-free SVG rendering of UV-diagrams.

The canvas maps domain coordinates to pixel coordinates (with the y-axis
flipped so "north is up"), and offers primitives for the few shapes the
library needs: circles (uncertainty regions), polygons (UV-cell
approximations), rectangles (UV-index leaf regions), and point markers
(query points).  :func:`render_uv_diagram` composes a full picture from a
:class:`~repro.core.diagram.UVDiagram`.
"""

from __future__ import annotations

import html
from typing import Iterable, List, Optional, Sequence

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect


class SvgCanvas:
    """Accumulates SVG elements in domain coordinates.

    Args:
        domain: the domain rectangle mapped onto the image.
        width: image width in pixels (height follows the domain aspect ratio).
        background: fill colour of the background.
    """

    def __init__(self, domain: Rect, width: int = 800, background: str = "#ffffff"):
        if width <= 0:
            raise ValueError("width must be positive")
        self.domain = domain
        self.width = width
        self.height = max(1, int(round(width * domain.height / domain.width)))
        self.background = background
        self._elements: List[str] = []

    # ------------------------------------------------------------------ #
    # coordinate mapping
    # ------------------------------------------------------------------ #
    def to_pixels(self, p: Point) -> tuple:
        """Map a domain point to pixel coordinates (y flipped)."""
        x = (p.x - self.domain.xmin) / self.domain.width * self.width
        y = (self.domain.ymax - p.y) / self.domain.height * self.height
        return (x, y)

    def _scale(self, length: float) -> float:
        return length / self.domain.width * self.width

    # ------------------------------------------------------------------ #
    # primitives
    # ------------------------------------------------------------------ #
    def add_circle(
        self,
        circle: Circle,
        stroke: str = "#1f77b4",
        fill: str = "none",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """Draw a circle (e.g. an uncertainty region)."""
        cx, cy = self.to_pixels(circle.center)
        radius = max(self._scale(circle.radius), 0.5)
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{radius:.2f}" '
            f'stroke="{stroke}" fill="{fill}" stroke-width="{stroke_width}" '
            f'opacity="{opacity}" />'
        )

    def add_polygon(
        self,
        polygon: Polygon,
        stroke: str = "#d62728",
        fill: str = "none",
        stroke_width: float = 1.5,
        opacity: float = 1.0,
    ) -> None:
        """Draw a polygon (e.g. a UV-cell approximation)."""
        if len(polygon) < 3:
            return
        points = " ".join(
            f"{x:.2f},{y:.2f}" for x, y in (self.to_pixels(v) for v in polygon.vertices)
        )
        self._elements.append(
            f'<polygon points="{points}" stroke="{stroke}" fill="{fill}" '
            f'stroke-width="{stroke_width}" opacity="{opacity}" />'
        )

    def add_rect(
        self,
        rect: Rect,
        stroke: str = "#7f7f7f",
        fill: str = "none",
        stroke_width: float = 0.5,
        opacity: float = 1.0,
    ) -> None:
        """Draw an axis-aligned rectangle (e.g. a UV-index leaf region)."""
        x, y = self.to_pixels(Point(rect.xmin, rect.ymax))
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{self._scale(rect.width):.2f}" '
            f'height="{self._scale(rect.height):.2f}" stroke="{stroke}" '
            f'fill="{fill}" stroke-width="{stroke_width}" opacity="{opacity}" />'
        )

    def add_marker(self, p: Point, color: str = "#2ca02c", size: float = 4.0,
                   label: Optional[str] = None) -> None:
        """Draw a point marker (e.g. a query point) with an optional label."""
        cx, cy = self.to_pixels(p)
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{size:.2f}" fill="{color}" />'
        )
        if label:
            self._elements.append(
                f'<text x="{cx + size + 2:.2f}" y="{cy - size - 2:.2f}" '
                f'font-size="11" fill="{color}">{html.escape(label)}</text>'
            )

    def add_title(self, title: str) -> None:
        """Draw a title in the top-left corner."""
        self._elements.append(
            f'<text x="8" y="18" font-size="14" fill="#000000">{html.escape(title)}</text>'
        )

    # ------------------------------------------------------------------ #
    # output
    # ------------------------------------------------------------------ #
    def to_svg(self) -> str:
        """Serialise the canvas as a standalone SVG document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="100%" height="100%" fill="{self.background}" />\n'
            f"  {body}\n"
            f"</svg>\n"
        )

    def save(self, path: str) -> None:
        """Write the SVG document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_svg())


def render_uv_diagram(
    diagram,
    width: int = 800,
    show_leaves: bool = True,
    show_objects: bool = True,
    highlight_cells: Optional[Sequence[int]] = None,
    query_points: Optional[Iterable[Point]] = None,
    title: Optional[str] = None,
) -> SvgCanvas:
    """Render a :class:`~repro.core.diagram.UVDiagram` onto a fresh canvas.

    Args:
        diagram: the UV-diagram to draw.
        width: image width in pixels.
        show_leaves: draw the UV-index leaf regions (the adaptive grid).
        show_objects: draw the uncertainty regions of all objects.
        highlight_cells: object ids whose approximate UV-cells (union of
            associated leaf regions) are shaded.
        query_points: optional query markers.
        title: optional image title.

    Returns:
        The populated canvas; call :meth:`SvgCanvas.save` to write the file.
    """
    canvas = SvgCanvas(diagram.domain, width=width)
    if title:
        canvas.add_title(title)

    if show_leaves:
        for leaf in diagram.index.leaves():
            canvas.add_rect(leaf.region, stroke="#c0c0c0", stroke_width=0.4)

    highlight = list(highlight_cells or [])
    palette = ["#ff7f0e", "#9467bd", "#8c564b", "#e377c2", "#17becf"]
    for position, oid in enumerate(highlight):
        color = palette[position % len(palette)]
        for region in diagram._pattern.uv_cell_leaf_regions(oid):
            canvas.add_rect(region, stroke=color, fill=color, opacity=0.25, stroke_width=0.3)

    if show_objects:
        for obj in diagram.objects:
            stroke = "#1f77b4"
            if obj.oid in highlight:
                stroke = palette[highlight.index(obj.oid) % len(palette)]
            canvas.add_circle(obj.region, stroke=stroke, stroke_width=1.0)

    for query in query_points or []:
        canvas.add_marker(query, label="q")

    return canvas
