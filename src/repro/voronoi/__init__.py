"""Classic point Voronoi diagram (the zero-uncertainty special case)."""

from repro.voronoi.point_voronoi import PointVoronoiDiagram

__all__ = ["PointVoronoiDiagram"]
