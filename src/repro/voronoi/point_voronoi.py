"""Classic Voronoi diagram over points.

The paper observes (Section I) that the ordinary Voronoi diagram is the
special case of the UV-diagram where every uncertainty region has zero
radius: each UV-cell then degenerates into the object's Voronoi cell and
every UV-partition contains exactly one object.  This module wraps
``scipy.spatial`` so that the special case can be checked against the general
machinery, and offers the point-query interface ("which site is the nearest
neighbour of q?") that the UV-diagram generalises.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial import KDTree, Voronoi

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect


class PointVoronoiDiagram:
    """Voronoi diagram of 2-D points with nearest-site point queries.

    Args:
        sites: the generating points, in id order (site ``i`` gets id ``i``
            unless explicit ids are supplied).
        domain: optional bounding rectangle used when materialising cells.
        ids: optional explicit site identifiers.
    """

    def __init__(
        self,
        sites: Sequence[Point],
        domain: Optional[Rect] = None,
        ids: Optional[Sequence[int]] = None,
    ):
        if len(sites) < 1:
            raise ValueError("at least one site is required")
        self.sites = list(sites)
        self.ids = list(ids) if ids is not None else list(range(len(sites)))
        if len(self.ids) != len(self.sites):
            raise ValueError("ids and sites must have the same length")
        self.domain = domain
        self._coords = np.array([[p.x, p.y] for p in self.sites])
        self._kdtree = KDTree(self._coords)
        self._voronoi = Voronoi(self._coords) if len(sites) >= 4 else None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def nearest_site(self, q: Point) -> int:
        """Id of the site whose Voronoi cell contains ``q``."""
        _, index = self._kdtree.query([q.x, q.y])
        return self.ids[int(index)]

    def nearest_sites(self, q: Point, k: int) -> List[Tuple[int, float]]:
        """The ``k`` nearest sites and their distances."""
        if k <= 0:
            return []
        k = min(k, len(self.sites))
        distances, indices = self._kdtree.query([q.x, q.y], k=k)
        distances = np.atleast_1d(distances)
        indices = np.atleast_1d(indices)
        return [(self.ids[int(i)], float(d)) for d, i in zip(distances, indices)]

    # ------------------------------------------------------------------ #
    # cells
    # ------------------------------------------------------------------ #
    def cell_polygon(self, site_index: int, resolution: int = 200) -> Polygon:
        """The (clipped) Voronoi cell of a site as a polygon.

        Unbounded cells are clipped to ``domain``; a domain is therefore
        required.  The cell is materialised by brute-force nearest-site
        labelling of a fine lattice followed by a convex hull, which is exact
        enough for the comparisons in the test-suite and avoids dealing with
        scipy's ridge bookkeeping for unbounded regions.
        """
        if self.domain is None:
            raise ValueError("a domain rectangle is required to materialise cells")
        from repro.geometry.hull import convex_hull

        lattice = self.domain.sample_grid(resolution)
        coords = np.array([[p.x, p.y] for p in lattice])
        _, owners = self._kdtree.query(coords)
        members = [lattice[i] for i, owner in enumerate(owners) if owner == site_index]
        members.append(self.sites[site_index])
        return Polygon(convex_hull(members))

    def neighbors(self, site_index: int) -> List[int]:
        """Indices of sites whose Voronoi cells share an edge with the given site."""
        if self._voronoi is None:
            return [i for i in range(len(self.sites)) if i != site_index]
        adjacent = set()
        for (a, b) in self._voronoi.ridge_points:
            if a == site_index:
                adjacent.add(int(b))
            elif b == site_index:
                adjacent.add(int(a))
        return sorted(adjacent)
