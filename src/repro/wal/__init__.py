"""repro.wal -- durability for live updates: log, recovery, checkpointer.

Updates to an opened snapshot used to live in a volatile overlay and die
with the process.  This package makes them durable:

* :mod:`repro.wal.log` -- an append-only, checksummed, fsync-controlled
  write-ahead log of insert/delete records (one LSN per update),
* :mod:`repro.wal.recovery` -- torn-tail-tolerant reading plus LSN-ordered
  replay of recovered records over the last snapshot generation,
* :mod:`repro.wal.checkpoint` -- a background checkpointer that folds the
  logged updates into snapshot generation N+1, flips the manifest
  atomically, and truncates the log while generation N keeps serving,
* :mod:`repro.wal.drill` -- the kill -9 crash-drill child process used by
  the recovery tests and the CI crash smoke.

The engine side lives in :meth:`repro.QueryEngine.open_live` (replays the
WAL over the manifest's generation and attaches the log) and in the
mutators, which append a record -- and fsync it -- *before* touching the
overlay.  That ordering is the package's core invariant and is enforced by
the ``wal-ordering`` rule of :mod:`repro.lint`.
"""

from repro.wal.log import (
    CorruptRecordError,
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    OP_DELETE,
    OP_INSERT,
    WalError,
    WalRecord,
    WalScan,
    WriteAheadLog,
    scan_wal,
)
from repro.wal.recovery import read_records, replay
from repro.wal.checkpoint import (
    Checkpointer,
    CheckpointResult,
    read_checkpoint_status,
)

__all__ = [
    "Checkpointer",
    "CheckpointResult",
    "CorruptRecordError",
    "FSYNC_ALWAYS",
    "FSYNC_BATCH",
    "OP_DELETE",
    "OP_INSERT",
    "WalError",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "read_checkpoint_status",
    "read_records",
    "replay",
    "scan_wal",
]
