"""Background checkpointer: fold logged updates into generation N+1.

A checkpoint turns the write-ahead log's tail back into a cold-startable
snapshot:

1. :meth:`~repro.engine.engine.QueryEngine.checkpoint_capture` takes a
   consistent ``(objects, last_lsn)`` cut under the engine's WAL lock,
2. a *fresh* engine is built from that cut with the parallel construction
   scheduler (``workers`` from the engine's config unless overridden) --
   the serving engine keeps answering queries against generation N the
   whole time,
3. the rebuilt engine is saved as ``gen-{N+1:06d}.snap``,
4. the manifest is flipped atomically (temp file + rename) to name the new
   generation and its ``base_lsn``,
5. the serving engine adopts the manifest
   (:meth:`~repro.engine.engine.QueryEngine.complete_checkpoint`), which
   truncates records at or below ``base_lsn`` out of the log, and
6. generations older than N are pruned (N stays: a serving fleet may still
   hold it open over mmap while it reloads).

A crash at any point is safe: before the rename the manifest still names
generation N and the full log replays over it; after the rename the log's
stale prefix (``lsn <= base_lsn``) is filtered out by recovery.

:class:`Checkpointer` wraps :meth:`~Checkpointer.run_once` in a daemon
thread with an interval and a ``min_records`` threshold so quiet periods do
not burn rebuild cycles.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import QueryEngine


@dataclass(frozen=True)
class CheckpointResult:
    """What one checkpoint did.

    Attributes:
        generation: the new generation number.
        base_lsn: last LSN folded into the new generation.
        folded_records: log records folded by this checkpoint.
        objects: object count of the new generation.
        snapshot_path: path of the new generation's snapshot file.
        seconds: wall-clock time of the rebuild + flip.
        pruned: ``generation -> filename`` of snapshots deleted afterwards.
    """

    generation: int
    base_lsn: int
    folded_records: int
    objects: int
    snapshot_path: str
    seconds: float
    pruned: Dict[int, str]


class Checkpointer:
    """Periodic background folding of the WAL into new snapshot generations.

    Args:
        engine: a live engine (opened with ``QueryEngine.open_live`` or laid
            out with ``save_generation``); raises ``ValueError`` otherwise.
        interval: seconds between background attempts (:meth:`start`).
        min_records: skip a checkpoint while fewer than this many records
            are pending -- :meth:`run_once` with ``force=True`` overrides.
        workers: construction workers for the rebuild; defaults to the
            engine's configured ``workers``.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        interval: float = 30.0,
        min_records: int = 1,
        workers: Optional[int] = None,
    ) -> None:
        if engine.live_directory is None:
            raise ValueError(
                "checkpointing needs a live deployment directory; open the "
                "engine with QueryEngine.open_live (or save_generation first)"
            )
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if min_records < 0:
            raise ValueError(f"min_records must be >= 0, got {min_records}")
        self.engine = engine
        self.interval = interval
        self.min_records = min_records
        self.workers = workers
        self.checkpoints_run = 0
        self.last_error: Optional[BaseException] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def run_once(self, force: bool = False) -> Optional[CheckpointResult]:
        """Fold the pending log tail into a new generation, if warranted.

        Returns ``None`` when skipped (fewer than ``min_records`` pending
        and not ``force``, or the dataset is empty -- an empty engine cannot
        be rebuilt, so its deletes stay in the log until an insert arrives).
        """
        from repro.engine.engine import QueryEngine
        from repro.engine.snapshot import (
            Manifest,
            generation_filename,
            prune_generations,
            save_engine,
            write_manifest,
        )

        engine = self.engine
        directory = engine.live_directory
        assert directory is not None  # checked in __init__
        start = time.perf_counter()
        objects, base_lsn = engine.checkpoint_capture()
        folded = base_lsn - engine.base_lsn
        if folded < self.min_records and not force:
            return None
        if not objects:
            return None
        config = engine.config.replace(store="memory", store_path=None)
        if self.workers is not None:
            config = config.replace(workers=self.workers)
        rebuilt = QueryEngine.build(objects, engine.domain, config)
        generation = engine.generation + 1
        name = generation_filename(generation)
        snapshot_path = os.path.join(directory, name)
        save_engine(rebuilt, snapshot_path)
        manifest = Manifest(generation=generation, snapshot=name, base_lsn=base_lsn)
        write_manifest(directory, manifest)
        engine.complete_checkpoint(manifest)
        pruned = prune_generations(directory, keep_from=generation - 1)
        self.checkpoints_run += 1
        return CheckpointResult(
            generation=generation,
            base_lsn=base_lsn,
            folded_records=folded,
            objects=len(objects),
            snapshot_path=snapshot_path,
            seconds=time.perf_counter() - start,
            pruned=pruned,
        )

    def start(self) -> None:
        """Start the background thread (daemon, named ``repro-checkpointer``)."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("checkpointer is already running")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-checkpointer", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Signal the background thread to exit and join it."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self.run_once()
            except Exception as exc:  # noqa: BLE001 - surfaced via last_error
                self.last_error = exc
