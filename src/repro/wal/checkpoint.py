"""Background checkpointer: fold logged updates into generation N+1.

A checkpoint turns the write-ahead log's tail back into a cold-startable
snapshot:

1. :meth:`~repro.engine.engine.QueryEngine.checkpoint_capture` takes a
   consistent ``(objects, last_lsn)`` cut under the engine's WAL lock,
2. a *fresh* engine is built from that cut with the parallel construction
   scheduler (``workers`` from the engine's config unless overridden) --
   the serving engine keeps answering queries against generation N the
   whole time,
3. the rebuilt engine is saved as ``gen-{N+1:06d}.snap``,
4. the manifest is flipped atomically (temp file + rename) to name the new
   generation and its ``base_lsn``,
5. the serving engine adopts the manifest
   (:meth:`~repro.engine.engine.QueryEngine.complete_checkpoint`), which
   truncates records at or below ``base_lsn`` out of the log, and
6. generations older than N are pruned (N stays: a serving fleet may still
   hold it open over mmap while it reloads).

A crash at any point is safe: before the rename the manifest still names
generation N and the full log replays over it; after the rename the log's
stale prefix (``lsn <= base_lsn``) is filtered out by recovery.

:class:`Checkpointer` wraps :meth:`~Checkpointer.run_once` in a daemon
thread with an interval and a ``min_records`` threshold so quiet periods do
not burn rebuild cycles.

Failure discipline: the new snapshot is *verified* (whole-file checksum)
before the manifest flips to it, so a bad write degrades to "still on
generation N" rather than "committed to garbage"; each attempt retries with
bounded exponential backoff; and the daemon thread never dies on an
exception -- it records ``last_error`` / ``consecutive_failures``, writes
them to ``checkpoint-status.json`` next to the manifest (the surface behind
``repro checkpoint --status`` and serve ``/stats``), backs off, and tries
again.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.storage.pagestore import verify_snapshot_file

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import QueryEngine

logger = logging.getLogger("repro.wal.checkpoint")

#: Filename of the checkpointer's status surface, next to the manifest.
CHECKPOINT_STATUS_NAME = "checkpoint-status.json"


def checkpoint_status_path(directory: str) -> str:
    return os.path.join(os.fspath(directory), CHECKPOINT_STATUS_NAME)


def read_checkpoint_status(directory: str) -> Optional[Dict[str, Any]]:
    """The last status the directory's checkpointer wrote, or ``None``.

    The cross-process view: a serve fleet (or ``repro checkpoint --status``)
    reads the mutating process's health without sharing memory with it.
    """
    try:
        with open(checkpoint_status_path(directory), encoding="utf-8") as handle:
            state = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return state if isinstance(state, dict) else None


@dataclass(frozen=True)
class CheckpointResult:
    """What one checkpoint did.

    Attributes:
        generation: the new generation number.
        base_lsn: last LSN folded into the new generation.
        folded_records: log records folded by this checkpoint.
        objects: object count of the new generation.
        snapshot_path: path of the new generation's snapshot file.
        seconds: wall-clock time of the rebuild + flip.
        pruned: ``generation -> filename`` of snapshots deleted afterwards.
    """

    generation: int
    base_lsn: int
    folded_records: int
    objects: int
    snapshot_path: str
    seconds: float
    pruned: Dict[int, str]


class Checkpointer:
    """Periodic background folding of the WAL into new snapshot generations.

    Args:
        engine: a live engine (opened with ``QueryEngine.open_live`` or laid
            out with ``save_generation``); raises ``ValueError`` otherwise.
        interval: seconds between background attempts (:meth:`start`).
        min_records: skip a checkpoint while fewer than this many records
            are pending -- :meth:`run_once` with ``force=True`` overrides.
        workers: construction workers for the rebuild; defaults to the
            engine's configured ``workers``.
        retry_attempts: attempts per :meth:`run_once` call before the error
            propagates (each retried with exponential backoff).
        retry_backoff: initial sleep between attempts, doubling per retry up
            to ``retry_backoff_max``.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        interval: float = 30.0,
        min_records: int = 1,
        workers: Optional[int] = None,
        retry_attempts: int = 3,
        retry_backoff: float = 0.1,
        retry_backoff_max: float = 5.0,
    ) -> None:
        if engine.live_directory is None:
            raise ValueError(
                "checkpointing needs a live deployment directory; open the "
                "engine with QueryEngine.open_live (or save_generation first)"
            )
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if min_records < 0:
            raise ValueError(f"min_records must be >= 0, got {min_records}")
        if retry_attempts < 1:
            raise ValueError(f"retry_attempts must be >= 1, got {retry_attempts}")
        self.engine = engine
        self.interval = interval
        self.min_records = min_records
        self.workers = workers
        self.retry_attempts = retry_attempts
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self.checkpoints_run = 0
        self.consecutive_failures = 0
        self.last_error: Optional[BaseException] = None
        self.last_result: Optional[CheckpointResult] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def run_once(self, force: bool = False) -> Optional[CheckpointResult]:
        """Fold the pending log tail into a new generation, if warranted.

        Returns ``None`` when skipped (fewer than ``min_records`` pending
        and not ``force``, or the dataset is empty -- an empty engine cannot
        be rebuilt, so its deletes stay in the log until an insert arrives).
        Each call makes up to ``retry_attempts`` attempts with exponential
        backoff; only when all fail does the last error propagate (after
        being recorded on :attr:`last_error` and in the status file).
        """
        delay = self.retry_backoff
        for attempt in range(1, self.retry_attempts + 1):
            try:
                result = self._checkpoint_once(force)
            except Exception as exc:
                self.last_error = exc
                self.consecutive_failures += 1
                self._write_status()
                if attempt == self.retry_attempts:
                    raise
                logger.warning(
                    "checkpoint attempt %d/%d failed (%s: %s); retrying in %.2fs",
                    attempt, self.retry_attempts, type(exc).__name__, exc, delay,
                )
                time.sleep(delay)
                delay = min(delay * 2, self.retry_backoff_max)
            else:
                if result is not None:
                    self.last_error = None
                    self.consecutive_failures = 0
                    self.last_result = result
                    self._write_status()
                return result
        return None  # pragma: no cover - loop always returns or raises

    def _checkpoint_once(self, force: bool) -> Optional[CheckpointResult]:
        """One checkpoint attempt (capture, rebuild, verify, flip, prune)."""
        from repro.engine.engine import QueryEngine
        from repro.engine.snapshot import (
            Manifest,
            generation_filename,
            prune_generations,
            save_engine,
            write_manifest,
        )

        engine = self.engine
        directory = engine.live_directory
        assert directory is not None  # checked in __init__
        start = time.perf_counter()
        objects, base_lsn = engine.checkpoint_capture()
        folded = base_lsn - engine.base_lsn
        if folded < self.min_records and not force:
            return None
        if not objects:
            return None
        config = engine.config.replace(store="memory", store_path=None)
        if self.workers is not None:
            config = config.replace(workers=self.workers)
        rebuilt = QueryEngine.build(objects, engine.domain, config)
        generation = engine.generation + 1
        name = generation_filename(generation)
        snapshot_path = os.path.join(directory, name)
        save_engine(rebuilt, snapshot_path)
        # Verify before the manifest flips: committing to a snapshot that
        # cannot be reopened would strand every later open on the fallback
        # path.  A bad file is deleted and the attempt fails (and retries);
        # generation N keeps serving the whole time.
        try:
            verify_snapshot_file(snapshot_path)
        except Exception:
            try:
                os.remove(snapshot_path)
            except OSError:  # pragma: no cover - leave it for quarantine
                logger.warning("could not remove bad snapshot %s", snapshot_path)
            raise
        previous = Manifest(
            generation=engine.generation,
            snapshot=generation_filename(engine.generation),
            base_lsn=engine.base_lsn,
        )
        manifest = Manifest(
            generation=generation, snapshot=name, base_lsn=base_lsn,
            previous=previous.as_previous(),
        )
        write_manifest(directory, manifest)
        engine.complete_checkpoint(manifest)
        pruned = prune_generations(directory, keep_from=generation - 1)
        self.checkpoints_run += 1
        return CheckpointResult(
            generation=generation,
            base_lsn=base_lsn,
            folded_records=folded,
            objects=len(objects),
            snapshot_path=snapshot_path,
            seconds=time.perf_counter() - start,
            pruned=pruned,
        )

    # ------------------------------------------------------------------ #
    # status surface
    # ------------------------------------------------------------------ #
    def status(self) -> Dict[str, Any]:
        """The checkpointer's health as one JSON-serialisable dict."""
        last = self.last_result
        return {
            "running": self.running,
            "checkpoints_run": self.checkpoints_run,
            "consecutive_failures": self.consecutive_failures,
            "last_error": (
                f"{type(self.last_error).__name__}: {self.last_error}"
                if self.last_error is not None else None
            ),
            "last_checkpoint": (
                {
                    "generation": last.generation,
                    "base_lsn": last.base_lsn,
                    "folded_records": last.folded_records,
                    "objects": last.objects,
                    "seconds": last.seconds,
                }
                if last is not None else None
            ),
            "updated_at": time.time(),
        }

    def _write_status(self) -> None:
        """Atomically publish :meth:`status` to ``checkpoint-status.json``."""
        directory = self.engine.live_directory
        if directory is None:  # pragma: no cover - checked in __init__
            return
        path = checkpoint_status_path(directory)
        blob = json.dumps(self.status(), indent=2, sort_keys=True).encode("utf-8")
        try:
            temporary = path + ".tmp"
            with open(temporary, "wb") as handle:
                handle.write(blob + b"\n")
            os.replace(temporary, path)
        except OSError as exc:  # pragma: no cover - status is best-effort
            logger.warning("could not write %s: %s", path, exc)

    def start(self) -> None:
        """Start the background thread (daemon, named ``repro-checkpointer``)."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("checkpointer is already running")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-checkpointer", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Signal the background thread to exit and join it."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        """Background loop: run, survive failures, back off while failing.

        The wait between attempts grows exponentially with the consecutive
        failure count (capped at 64x the interval), so a persistently broken
        environment is not hammered -- but the thread never exits: recovery
        needs no operator restart, and the failure is visible the whole time
        via :meth:`status` / ``checkpoint-status.json``.
        """
        while not self._stop_event.wait(self._wait_seconds()):
            try:
                self.run_once()
            except Exception as exc:
                # run_once already recorded last_error and wrote the status
                # file; the loop's job is only to stay alive and back off.
                logger.error(
                    "background checkpoint failed (%d consecutive): %s: %s",
                    self.consecutive_failures, type(exc).__name__, exc,
                )

    def _wait_seconds(self) -> float:
        backoff = 2 ** min(self.consecutive_failures, 6)
        return min(self.interval * backoff, self.interval * 64)
