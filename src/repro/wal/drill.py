"""The kill -9 crash-drill child: a deterministic acknowledged update stream.

Run as ``python -m repro.wal.drill --dir DEPLOYMENT --updates N --seed S``.
The child opens the live deployment, applies a seeded insert/delete stream,
and prints one ``ACK <lsn> <op> <oid>`` line -- flushed -- after each
mutator *returns* (i.e. after the record is durable per the fsync policy).
The parent test (or the CI crash smoke) reads some ACK lines, sends
``SIGKILL``, reopens the directory, and asserts that every acknowledged LSN
was recovered: acked is a subset of replayed, which is exactly the WAL's
durability contract.

The stream is a pure function of ``(directory contents, seed)``, so an
uninterrupted run over a copy of the same deployment produces the identical
sequence -- the reference the recovery tests compare answers against,
bit for bit.
"""

from __future__ import annotations

import argparse
import random
from typing import List

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.uncertain.objects import UncertainObject

#: Fraction of steps that delete an existing object (when more than one is
#: left -- the engine cannot go empty, an empty diagram is unbuildable).
DELETE_FRACTION = 0.3


def synthesize_object(oid: int, rng: random.Random, domain: "object") -> UncertainObject:
    """A fresh uncertain object with a seeded center/radius inside ``domain``."""
    xmin = getattr(domain, "xmin")
    xmax = getattr(domain, "xmax")
    ymin = getattr(domain, "ymin")
    ymax = getattr(domain, "ymax")
    width = xmax - xmin
    height = ymax - ymin
    radius = 0.005 * min(width, height) * (1.0 + rng.random())
    x = xmin + radius + rng.random() * (width - 2 * radius)
    y = ymin + radius + rng.random() * (height - 2 * radius)
    return UncertainObject(oid, Circle(Point(x, y), radius))


def run_stream(directory: str, updates: int, seed: int,
               fsync: str = "always") -> int:
    """Open the deployment and apply the seeded stream, acknowledging each."""
    from repro.engine.engine import QueryEngine

    engine = QueryEngine.open_live(directory, fsync=fsync)
    rng = random.Random(seed)
    next_oid = (max(engine.by_id) if engine.by_id else 0) + 1000
    for _ in range(updates):
        live: List[int] = sorted(engine.by_id)
        if len(live) > 1 and rng.random() < DELETE_FRACTION:
            oid = live[rng.randrange(len(live))]
            engine.delete(oid)
            op = "delete"
        else:
            oid = next_oid
            next_oid += 1
            engine.insert(synthesize_object(oid, rng, engine.domain))
            op = "insert"
        # The mutator returned, so the record is durable (fsync=always) --
        # only now is the update acknowledged to whoever watches stdout.
        print(f"ACK {engine.last_lsn} {op} {oid}", flush=True)
    if fsync != "always":
        engine.wal_sync()
    print("DONE", flush=True)
    engine.close_wal()
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.wal.drill",
        description="acknowledged update stream against a live deployment "
                    "(crash-drill child process)",
    )
    parser.add_argument("--dir", required=True, help="live deployment directory")
    parser.add_argument("--updates", type=int, default=100,
                        help="number of insert/delete steps (default 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="stream seed (default 0)")
    parser.add_argument("--fsync", choices=("always", "batch"), default="always",
                        help="WAL durability policy (default always)")
    args = parser.parse_args(argv)
    return run_stream(args.dir, args.updates, args.seed, fsync=args.fsync)


if __name__ == "__main__":
    raise SystemExit(main())
