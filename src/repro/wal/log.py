"""The write-ahead log: append-only, checksummed, fsync-controlled records.

File layout::

    [8s magic "UVWAL001"][u16 format][u16 reserved][u32 reserved]   header
    [u32 payload_len][u32 crc32][u64 lsn][u8 op][payload bytes]     record *

Every record carries a log sequence number (LSN) assigned by the single
writer -- the engine's update path -- and a CRC-32 over ``(lsn, op,
payload)``.  Insert payloads reuse the snapshot codec's bit-exact object
encoding (:func:`repro.storage.codec.encode_entry`), so a replayed insert
reconstructs the identical IEEE-754 doubles the acknowledged insert carried;
delete payloads are just the object id.

Durability contract: :meth:`WriteAheadLog.append` returns only after the
record reached the file (and, under the default ``"always"`` fsync policy,
after ``os.fsync``).  An update is *acknowledged* only after its append
returned, which is what makes "zero lost acknowledged updates" a checkable
property after kill -9 -- see :mod:`repro.wal.recovery`.

A crash can leave a *torn tail*: a final record whose header, payload, or
checksum is incomplete.  :func:`scan_wal` stops at the first torn or corrupt
record and reports how many trailing bytes it ignored; reopening the log for
appending truncates that tail so new records extend the last durable one.

A torn tail is *not* the only way a log can break: a flipped bit in the
middle of the file corrupts a record that acknowledged durable data.  The
two cases demand opposite responses -- truncating a torn tail loses nothing
promised, truncating mid-log corruption silently drops acknowledged updates
-- so :func:`scan_wal` distinguishes them by *resynchronising*: after the
first broken record it searches forward for a later record that still
checksums (with a later LSN).  Finding one proves the break is mid-log
corruption; the scan reports it and opening the log for appending raises
:class:`CorruptRecordError` instead of truncating.
"""

from __future__ import annotations

import logging
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import BinaryIO, List, Optional, Tuple, TYPE_CHECKING

from repro.storage.codec import decode_entry, encode_entry
from repro.uncertain.objects import UncertainObject

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from repro.faults.plan import FaultInjector

logger = logging.getLogger("repro.wal")

#: File magic + format version of the log header.
WAL_MAGIC = b"UVWAL001"
WAL_FORMAT = 1

#: Logged operations.
OP_INSERT = 1
OP_DELETE = 2
OP_NAMES = {OP_INSERT: "insert", OP_DELETE: "delete"}

#: fsync policies: ``"always"`` syncs every append (the durability default);
#: ``"batch"`` leaves syncing to explicit :meth:`WriteAheadLog.sync` calls
#: (group commit -- the caller decides the acknowledgement boundary).
FSYNC_ALWAYS = "always"
FSYNC_BATCH = "batch"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH)

_HEADER = struct.Struct("<8sHHI")
_RECORD = struct.Struct("<IIQB")
_CRC_PREFIX = struct.Struct("<QB")
_OID = struct.Struct("<q")

HEADER_SIZE = _HEADER.size
RECORD_HEADER_SIZE = _RECORD.size


class WalError(RuntimeError):
    """The log is unusable: wrong magic, newer format, or a broken append."""


class CorruptRecordError(WalError):
    """A WAL record in the *middle* of the log failed its checksum.

    Distinct from a torn tail: intact records follow the broken one, so the
    damage is bit rot (or an overwrite), not a crash mid-append -- and the
    broken record once acknowledged durable data.  Truncating here would
    silently drop acknowledged updates, so opening the log refuses instead;
    ``repro wal-inspect`` shows the damage and the runbook in
    :doc:`docs/operations` covers recovery.
    """


@dataclass(frozen=True)
class WalRecord:
    """One durable update: ``(lsn, op, payload)`` as read from or written to disk."""

    lsn: int
    op: int
    payload: bytes

    @property
    def op_name(self) -> str:
        """Human name of the operation (``"insert"`` / ``"delete"``)."""
        return OP_NAMES.get(self.op, f"op-{self.op}")


@dataclass(frozen=True)
class WalScan:
    """Result of reading a log file front to back.

    Attributes:
        records: every intact record, in file (= LSN) order.
        valid_bytes: file prefix covered by the header plus intact records.
        torn_bytes: trailing bytes past ``valid_bytes`` that could not be
            read as a record (a crash mid-append; zero on a clean log).
        torn_reason: why the scan stopped early (empty on a clean log).
        resync_offset: byte offset of the first intact record found *after*
            the break, or ``None`` when none exists.  A successful resync is
            the proof that the break is mid-log corruption rather than a
            torn tail (see :attr:`is_corrupt`).
        resync_lsn: LSN of the record at ``resync_offset``.
    """

    records: List[WalRecord] = field(default_factory=list)
    valid_bytes: int = 0
    torn_bytes: int = 0
    torn_reason: str = ""
    resync_offset: Optional[int] = None
    resync_lsn: Optional[int] = None

    @property
    def last_lsn(self) -> int:
        """LSN of the last intact record (0 for an empty log)."""
        return self.records[-1].lsn if self.records else 0

    @property
    def is_corrupt(self) -> bool:
        """Whether the break is mid-log corruption (not just a torn tail)."""
        return self.resync_offset is not None


# ---------------------------------------------------------------------- #
# payload codecs
# ---------------------------------------------------------------------- #
def encode_insert(obj: UncertainObject) -> bytes:
    """Insert payload: the snapshot codec's bit-exact object encoding."""
    return encode_entry(obj)


def decode_insert(payload: bytes) -> UncertainObject:
    """Inverse of :func:`encode_insert`."""
    try:
        entry = decode_entry(payload)
    except (ValueError, struct.error) as exc:
        raise WalError(f"corrupt insert payload: {exc}") from exc
    if not isinstance(entry, UncertainObject):
        raise WalError(
            f"insert payload decoded to {type(entry).__name__}, "
            f"not an UncertainObject"
        )
    return entry


def encode_delete(oid: int) -> bytes:
    """Delete payload: the object id as a little-endian i64."""
    return _OID.pack(oid)


def decode_delete(payload: bytes) -> int:
    """Inverse of :func:`encode_delete`."""
    if len(payload) != _OID.size:
        raise WalError(f"delete payload has {len(payload)} bytes, expected {_OID.size}")
    oid: int = _OID.unpack(payload)[0]
    return oid


# ---------------------------------------------------------------------- #
# record codec
# ---------------------------------------------------------------------- #
def encode_record(lsn: int, op: int, payload: bytes) -> bytes:
    """One framed record: length/checksum header followed by the payload."""
    crc = zlib.crc32(_CRC_PREFIX.pack(lsn, op) + payload)
    return _RECORD.pack(len(payload), crc, lsn, op) + payload


def scan_wal(path: str) -> WalScan:
    """Read a log file, stopping at the first torn or corrupt record.

    The whole file is read into memory (logs are bounded by checkpoint
    truncation, so this stays small).  Raises :class:`WalError` only for a
    file that is not a WAL at all (bad magic) or is newer than this library;
    a torn tail -- the expected crash artifact -- is reported, not raised.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) == 0:
        return WalScan(records=[], valid_bytes=0, torn_bytes=0, torn_reason="empty file")
    if len(data) < HEADER_SIZE:
        return WalScan(
            records=[], valid_bytes=0, torn_bytes=len(data),
            torn_reason="truncated header",
        )
    magic, wal_format, _, _ = _HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise WalError(f"{path} is not a write-ahead log (bad magic {magic!r})")
    if wal_format > WAL_FORMAT:
        raise WalError(
            f"{path} uses WAL format {wal_format}, newer than this library "
            f"(supports up to {WAL_FORMAT})"
        )

    records: List[WalRecord] = []
    offset = HEADER_SIZE
    last_lsn: Optional[int] = None
    torn_reason = ""
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < RECORD_HEADER_SIZE:
            torn_reason = "truncated record header"
            break
        length, crc, lsn, op = _RECORD.unpack_from(data, offset)
        if remaining < RECORD_HEADER_SIZE + length:
            torn_reason = "truncated record payload"
            break
        start = offset + RECORD_HEADER_SIZE
        payload = data[start:start + length]
        if zlib.crc32(_CRC_PREFIX.pack(lsn, op) + payload) != crc:
            torn_reason = "checksum mismatch"
            break
        if op not in OP_NAMES:
            torn_reason = f"unknown op {op}"
            break
        if last_lsn is not None and lsn != last_lsn + 1:
            torn_reason = f"LSN {lsn} does not follow {last_lsn}"
            break
        records.append(WalRecord(lsn=lsn, op=op, payload=bytes(payload)))
        last_lsn = lsn
        offset += RECORD_HEADER_SIZE + length
    resync_offset: Optional[int] = None
    resync_lsn: Optional[int] = None
    if torn_reason and offset < len(data):
        resync_offset, resync_lsn = _find_resync(data, offset + 1, last_lsn or 0)
    return WalScan(
        records=records,
        valid_bytes=offset,
        torn_bytes=len(data) - offset,
        torn_reason=torn_reason,
        resync_offset=resync_offset,
        resync_lsn=resync_lsn,
    )


def _find_resync(data: bytes, start: int,
                 last_lsn: int) -> Tuple[Optional[int], Optional[int]]:
    """Search forward from ``start`` for an intact record past a break.

    A hit must parse as a record with a known op, an LSN strictly after the
    last good one, a payload that fits in the file, and a matching CRC --
    the checksum covers ``(lsn, op, payload)``, so a false positive in
    arbitrary damage is a ~2^-32 event.  Returns ``(offset, lsn)`` or
    ``(None, None)``.
    """
    for offset in range(start, len(data) - RECORD_HEADER_SIZE + 1):
        length, crc, lsn, op = _RECORD.unpack_from(data, offset)
        if op not in OP_NAMES or not last_lsn < lsn <= last_lsn + (1 << 32):
            continue
        if length > len(data) - offset - RECORD_HEADER_SIZE:
            continue
        payload = data[offset + RECORD_HEADER_SIZE:
                       offset + RECORD_HEADER_SIZE + length]
        if zlib.crc32(_CRC_PREFIX.pack(lsn, op) + payload) == crc:
            return offset, lsn
    return None, None


class WriteAheadLog:
    """Single-writer appender over one log file.

    Opening an existing log scans it, truncates any torn tail, and positions
    the write cursor after the last durable record; the records found are
    kept on :attr:`records_at_open` so recovery does not scan twice.  The
    engine serializes appends under its update lock -- the log itself adds
    no locking.
    """

    def __init__(self, path: str, fsync: str = FSYNC_ALWAYS,
                 injector: Optional["FaultInjector"] = None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r} "
                f"(known: {', '.join(FSYNC_POLICIES)})"
            )
        self.path = os.fspath(path)
        self.fsync_policy = fsync
        self.records_at_open: List[WalRecord] = []
        self._file: Optional[BinaryIO] = None
        self._last_lsn = 0
        self._appended = 0
        self._unsynced = 0
        self._injector = injector
        if not os.path.exists(self.path) or os.path.getsize(self.path) < HEADER_SIZE:
            # Fresh log (or a create() torn mid-header): write a clean header.
            self._file = open(self.path, "wb")
            self._file.write(_HEADER.pack(WAL_MAGIC, WAL_FORMAT, 0, 0))
            self._file.flush()
            os.fsync(self._file.fileno())
        else:
            scan = scan_wal(self.path)
            if scan.is_corrupt:
                raise CorruptRecordError(
                    f"{self.path}: record at byte {scan.valid_bytes} is broken "
                    f"({scan.torn_reason}) but an intact record follows at byte "
                    f"{scan.resync_offset} (LSN {scan.resync_lsn}) -- mid-log "
                    f"corruption, refusing to truncate acknowledged records; "
                    f"run `repro wal-inspect` and see docs/operations.md"
                )
            self.records_at_open = scan.records
            self._last_lsn = scan.last_lsn
            self._file = open(self.path, "r+b")
            if scan.torn_bytes:
                logger.warning(
                    "%s: truncating %d-byte torn tail at byte offset %d (%s); "
                    "last good LSN is %d",
                    self.path, scan.torn_bytes, scan.valid_bytes,
                    scan.torn_reason, scan.last_lsn,
                )
            # Drop the torn tail so appends extend the last durable record.
            self._file.truncate(scan.valid_bytes)
            self._file.seek(scan.valid_bytes)

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def append(self, op: int, payload: bytes, lsn: Optional[int] = None) -> int:
        """Write one record and return its LSN.

        Under the ``"always"`` policy the record is fsynced before this
        returns -- the caller may acknowledge the update afterwards.  Under
        ``"batch"`` the caller owns the acknowledgement boundary via
        :meth:`sync`.
        """
        if self._file is None:
            raise WalError("the log is closed")
        if op not in OP_NAMES:
            raise ValueError(f"unknown WAL op {op!r}")
        if lsn is None:
            lsn = self._last_lsn + 1
        elif lsn <= self._last_lsn:
            raise WalError(f"LSN {lsn} is not past the last written LSN {self._last_lsn}")
        record = encode_record(lsn, op, payload)
        fail_fsync = False
        if self._injector is not None:
            record, fail_fsync = self._apply_append_fault(record)
        self._file.write(record)
        self._file.flush()
        if fail_fsync:
            raise OSError("injected fsync failure on WAL append")
        if self.fsync_policy == FSYNC_ALWAYS:
            os.fsync(self._file.fileno())
        else:
            self._unsynced += 1
        self._last_lsn = lsn
        self._appended += 1
        return lsn

    def _apply_append_fault(self, record: bytes) -> Tuple[bytes, bool]:
        """Apply any scheduled fault to one encoded record (drills only).

        Returns the (possibly corrupted) bytes to write plus whether the
        post-write fsync should fail.  Torn and short writes emulate a crash
        mid-append: the partial bytes are flushed, the handle is closed so no
        later append can extend the garbage, and the append raises -- exactly
        the state a real crash leaves, so the update is never acknowledged.
        """
        assert self._injector is not None and self._file is not None
        fault = self._injector.fire("wal.append")
        if fault is None:
            return record, False
        if fault.kind == "latency":
            time.sleep(fault.arg)
            return record, False
        if fault.kind == "fsync_fail":
            return record, True
        if fault.kind == "io_error":
            raise OSError("injected WAL write error")
        if fault.kind == "crc_flip":
            # Silent on-disk corruption: the record is written and the append
            # acknowledged, but the stored CRC is wrong.  The next scan must
            # detect it -- this is the fault the resync logic exists for.
            damaged = bytearray(record)
            damaged[4] ^= 0x01  # low byte of the crc32 field
            return bytes(damaged), False
        if fault.kind in ("torn_write", "short_write"):
            cut = (RECORD_HEADER_SIZE if fault.kind == "short_write"
                   else self._injector.rng("wal.append").randrange(1, len(record)))
            self._file.write(record[:cut])
            self._file.flush()
            self._file.close()
            self._file = None
            raise OSError(f"injected {fault.kind} after {cut} of {len(record)} bytes")
        raise ValueError(f"unknown WAL fault kind {fault.kind!r}")

    def sync(self) -> int:
        """fsync buffered records (the ``"batch"`` group-commit boundary).

        Returns how many appends the sync made durable.
        """
        if self._file is None:
            raise WalError("the log is closed")
        os.fsync(self._file.fileno())
        synced, self._unsynced = self._unsynced, 0
        return synced

    # ------------------------------------------------------------------ #
    # truncation (checkpointing)
    # ------------------------------------------------------------------ #
    def truncate_through(self, base_lsn: int) -> int:
        """Drop every record with ``lsn <= base_lsn`` (post-checkpoint step).

        Survivors are rewritten into a temporary file that atomically
        replaces the log, so a crash mid-truncation leaves either the old or
        the new file fully intact -- never a half-truncated one.  Returns the
        number of dropped records.
        """
        if self._file is None:
            raise WalError("the log is closed")
        self._file.flush()
        os.fsync(self._file.fileno())
        scan = scan_wal(self.path)
        kept = [record for record in scan.records if record.lsn > base_lsn]
        dropped = len(scan.records) - len(kept)
        compact_path = self.path + ".compact"
        with open(compact_path, "wb") as out:
            out.write(_HEADER.pack(WAL_MAGIC, WAL_FORMAT, 0, 0))
            for record in kept:
                out.write(encode_record(record.lsn, record.op, record.payload))
            out.flush()
            os.fsync(out.fileno())
        self._file.close()
        os.replace(compact_path, self.path)
        self._file = open(self.path, "r+b")
        self._file.seek(0, os.SEEK_END)
        # Every surviving record was fsynced into the compact file above, so
        # nothing is pending a group commit any more.
        self._unsynced = 0
        if base_lsn > self._last_lsn:
            self._last_lsn = base_lsn
        return dropped

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def last_lsn(self) -> int:
        """LSN of the last written (or recovered) record."""
        return self._last_lsn

    @property
    def appended(self) -> int:
        """Records appended through this handle (excludes recovered ones)."""
        return self._appended

    @property
    def closed(self) -> bool:
        return self._file is None

    def size_bytes(self) -> int:
        """Current file size (header + records)."""
        if self._file is not None:
            self._file.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        """Flush, fsync, and release the file handle (idempotent)."""
        if self._file is None:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._file = None
