"""Crash recovery: read the durable tail of the log, replay it in LSN order.

Recovery is what :meth:`repro.QueryEngine.open_live` runs on every open:

1. read the manifest to find the live snapshot generation and its
   ``base_lsn`` (the last update already folded into that generation),
2. :func:`read_records` -- scan the log, tolerate a torn tail, and keep only
   records newer than ``base_lsn`` (records at or below it are already in
   the snapshot; they survive on disk only when a crash interrupted the
   checkpointer between its manifest flip and its log truncation),
3. :func:`replay` -- apply those records through
   :meth:`~repro.engine.engine.QueryEngine.apply_record`, which rebuilds the
   affected index state *without* re-logging anything.

Replay is strictly LSN-ordered -- the monotonic guard below raises on any
regression or duplicate instead of silently reordering an insert/delete
pair.  The ``wal-ordering`` lint rule checks that the guard stays in place.
"""

from __future__ import annotations

from typing import List, Sequence, TYPE_CHECKING

from repro.wal.log import WalError, WalRecord, WalScan, scan_wal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import QueryEngine


def read_records(path: str, after_lsn: int = 0) -> WalScan:
    """Scan ``path`` and keep the records with ``lsn > after_lsn``.

    The torn-tail diagnostics of the underlying scan are preserved, with
    ``valid_bytes`` still describing the whole durable prefix of the file.
    """
    scan = scan_wal(path)
    pending = [record for record in scan.records if record.lsn > after_lsn]
    return WalScan(
        records=pending,
        valid_bytes=scan.valid_bytes,
        torn_bytes=scan.torn_bytes,
        torn_reason=scan.torn_reason,
    )


def replay(engine: "QueryEngine", records: Sequence[WalRecord],
           after_lsn: int = 0) -> int:
    """Apply recovered records to ``engine`` in strict LSN order.

    Every record must carry an LSN past ``after_lsn`` and past its
    predecessor's -- the monotonic guard that keeps a reordered or duplicated
    record from silently corrupting the replayed state.  Records are applied
    through :meth:`~repro.engine.engine.QueryEngine.apply_record`, which
    never re-appends to the log.  Returns the number of records applied.
    """
    last_lsn = after_lsn
    applied = 0
    for record in records:
        if record.lsn <= last_lsn:
            raise WalError(
                f"replay out of LSN order: record {record.lsn} after {last_lsn}"
            )
        engine.apply_record(record)
        last_lsn = record.lsn
        applied += 1
    return applied


def verify_log(path: str) -> List[str]:
    """Human-readable diagnostics of a log file (the ``wal-inspect`` core).

    Returns a list of warning lines; an empty list means the log is clean
    (no torn tail, contiguous LSNs).
    """
    scan = scan_wal(path)
    warnings: List[str] = []
    if scan.torn_bytes:
        warnings.append(
            f"torn tail: {scan.torn_bytes} trailing byte(s) ignored "
            f"({scan.torn_reason}); they will be truncated on the next "
            f"live open"
        )
    return warnings
