"""Shared fixtures for the test-suite.

The heavier fixtures (built indexes and diagrams) are session-scoped so that
expensive constructions run once; tests must therefore treat them as
read-only.
"""

from __future__ import annotations

import pytest

from repro import (
    Point,
    Rect,
    UVDiagram,
    UncertainObject,
    generate_query_points,
    generate_uniform_objects,
)
from repro.rtree.tree import RTree


SMALL_DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


@pytest.fixture(scope="session")
def small_objects():
    """Ten handcrafted objects in a 1000 x 1000 domain (deterministic layout)."""
    layout = [
        (150.0, 150.0, 40.0),
        (400.0, 180.0, 30.0),
        (700.0, 150.0, 50.0),
        (850.0, 400.0, 35.0),
        (600.0, 500.0, 45.0),
        (300.0, 450.0, 25.0),
        (150.0, 700.0, 40.0),
        (450.0, 800.0, 30.0),
        (750.0, 750.0, 55.0),
        (500.0, 300.0, 20.0),
    ]
    return [
        UncertainObject.gaussian(i, Point(x, y), r) for i, (x, y, r) in enumerate(layout)
    ]


@pytest.fixture(scope="session")
def small_domain():
    """Domain rectangle matching ``small_objects``."""
    return SMALL_DOMAIN


@pytest.fixture(scope="session")
def medium_dataset():
    """80 uniformly distributed objects with large uncertainty regions."""
    objects, domain = generate_uniform_objects(80, seed=11, diameter=400)
    return objects, domain


@pytest.fixture(scope="session")
def medium_queries(medium_dataset):
    """Query points for the medium dataset."""
    _, domain = medium_dataset
    return generate_query_points(20, domain, seed=23)


@pytest.fixture(scope="session")
def small_rtree(small_objects):
    """Bulk-loaded R-tree over the small dataset."""
    return RTree.bulk_load(small_objects, fanout=4)


@pytest.fixture(scope="session")
def small_diagram(small_objects, small_domain):
    """A UV-diagram (IC construction) over the small dataset."""
    return UVDiagram.build(
        small_objects, small_domain, page_capacity=4, seed_knn=10, rtree_fanout=4
    )


@pytest.fixture(scope="session")
def medium_diagram(medium_dataset):
    """A UV-diagram (IC construction) over the medium dataset."""
    objects, domain = medium_dataset
    return UVDiagram.build(objects, domain, page_capacity=8, seed_knn=40)
