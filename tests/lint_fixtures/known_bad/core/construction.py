"""Known-bad construction module: order- and RNG-nondeterminism."""

import random

import numpy as np


def build_order(cells, active, seed):
    # BAD (seeded): set-literal iteration has no deterministic order.
    for oid in {3, 1, 2}:
        yield oid
    # BAD (seeded): set-method result iterated directly.
    for cell in cells.intersection(active):
        yield cell.oid
    # BAD (seeded): comprehension over a freshly built set.
    yield from [cell.oid for cell in set(cells)]


def shuffled_insertion(objects):
    order = list(objects)
    # BAD (seeded): global random generator, unseeded across processes.
    random.shuffle(order)
    return order


def jitter(count):
    # BAD (seeded): numpy's global random state.
    return np.random.rand(count)


def tie_break(objects):
    # BAD (seeded): allocation addresses are not a stable order.
    return sorted(objects, key=id)
