"""Known-bad engine module: unguarded mutators and uncounted page I/O."""


class UVEngine:
    def __init__(self, backend, readonly=False):
        self.backend = backend
        self.readonly = readonly
        self._dirty = False

    def _check_writable(self, operation):
        if self.readonly:
            raise RuntimeError(f"read-only engine: {operation}")

    def insert(self, obj):
        # BAD (seeded): public mutator never checks the guard -- readonly-guard.
        self.backend.insert(obj)
        self._dirty = True

    def fetch(self, store, page_id):
        # BAD (seeded): uncounted PageStore read -- counted-io.
        return store.load_page(page_id)

    def flush(self, store, page_id, payload):
        # BAD (seeded): uncounted PageStore write -- counted-io.
        store.store_page(page_id, payload)
