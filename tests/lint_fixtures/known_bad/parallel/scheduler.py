"""Known-bad scheduler module: unpicklable callables shipped to workers."""

from multiprocessing import Pool, Process


def build_partitions(cells, workers):
    def partition_worker(cell):
        return cell.build()

    with Pool(workers) as pool:
        # BAD (seeded): a lambda cannot pickle under spawn -- picklable-work.
        areas = pool.map(lambda cell: cell.area(), cells)
        # BAD (seeded): neither can a nested function -- picklable-work.
        built = pool.map(partition_worker, cells)
    return areas, built


def launch_monitor(queue):
    def monitor_loop():
        while True:
            queue.get()

    # BAD (seeded): nested function as a Process target -- picklable-work.
    worker = Process(target=monitor_loop)
    worker.start()
    return worker
