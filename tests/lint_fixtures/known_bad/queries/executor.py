"""Known-bad executor module: raw config copies and uncounted page reads."""

import dataclasses
from dataclasses import replace


def widen_rings(config):
    # BAD (seeded): skips __post_init__ re-validation -- validated-replace.
    return dataclasses.replace(config, rings=config.rings * 2)


def retarget(config, x, y):
    # BAD (seeded): the aliased import is still the raw helper -- validated-replace.
    return replace(config, x=x, y=y)


def prefetch(store, page_ids):
    # BAD (seeded): uncounted reads deflate the paper's I/O metric -- counted-io.
    return [store.load_page(page_id) for page_id in page_ids]


def drop(store, page_id):
    # BAD (seeded): uncounted free -- counted-io.
    store.delete_page(page_id)
