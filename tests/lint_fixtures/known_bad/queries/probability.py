"""Seeded known-bad fixture: the PR 4 degenerate-dominance oid bug.

This reintroduces, verbatim in shape, the defect that shipped in the
original ``probability.py``: comparing object ids with ``is`` instead of
``==``.  CPython interns small ints, so the buggy form passes every test
whose oids stay below 257 and silently zeroes the winner's probability for
real datasets.  ``repro lint`` must flag the ``is`` comparison (rule
``float-eq``); the true-negative twin lives in the known_good tree.
"""


def degenerate_dominance(objects, winner):
    # BUG (seeded): identity comparison of int oids.
    return {obj.oid: (1.0 if obj.oid is winner.oid else 0.0) for obj in objects}


def near_threshold(probability):
    # BUG (seeded): computed probability compared against a float literal.
    return probability == 1.0
