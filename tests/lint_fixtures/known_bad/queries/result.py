"""Known-bad result module: wire payload types that cannot round-trip."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ProbeResult:
    # BAD (seeded): serializes but has no from_dict -- wire-complete.
    oid: int
    probability: float

    def to_dict(self):
        return {"oid": self.oid, "probability": self.probability}


@dataclass(frozen=True)
class AccessStats:
    # BAD (seeded): neither half of the pair -- wire-complete.
    reads: int
    writes: int


@dataclass(frozen=True)
class DecodeAnswer:
    # BAD (seeded): decodes but cannot be serialized -- wire-complete.
    payload: dict

    @classmethod
    def from_dict(cls, payload):
        return cls(payload=dict(payload))
