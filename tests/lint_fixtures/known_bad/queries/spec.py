"""Known-bad descriptor module: wire surface out of sync, mutable specs."""

from dataclasses import dataclass
from typing import Union


@dataclass
class ThresholdQuery:
    # BAD (seeded): not frozen=True -- frozen-spec must fire.
    x: float
    y: float
    threshold: float

    def to_dict(self):
        return {
            "type": "threshold",
            "x": self.x,
            "y": self.y,
            "threshold": self.threshold,
        }

    # BAD (seeded): wire-reachable but no from_dict -- wire-complete.


@dataclass(frozen=True)
class TopKQuery:
    x: float
    y: float
    k: int

    def to_dict(self):
        return {"type": "topk", "x": self.x, "y": self.y, "k": self.k}

    @classmethod
    def from_dict(cls, payload):
        return cls(x=payload["x"], y=payload["y"], k=payload["k"])


@dataclass(frozen=True)
class RangeQuery:
    x: float
    y: float
    radius: float

    def to_dict(self):
        return {"type": "range", "x": self.x, "y": self.y, "radius": self.radius}

    @classmethod
    def from_dict(cls, payload):
        return cls(x=payload["x"], y=payload["y"], radius=payload["radius"])


# BAD (seeded): TopKQuery is in the union but never registered, and
# RangeQuery is registered but missing from the union -- wire-complete
# must flag both directions.
Query = Union[ThresholdQuery, TopKQuery]

QUERY_TYPES = {
    "threshold": ThresholdQuery,
    "range": RangeQuery,
}


def rescale(query, factor):
    # BAD (seeded): frozen escape hatch outside __post_init__ -- frozen-spec.
    object.__setattr__(query, "threshold", query.threshold * factor)
    return query
