"""Known-bad router module: declared-guarded state touched without its lock."""

import threading


class Router:
    _GUARDED_BY = {
        "_pending": "_lock",
        "counters": "_lock",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._pending = {}
        self.counters = {}

    def submit(self, request_id, payload):
        # BAD (seeded): guarded write outside the lock -- lock-discipline.
        self._pending[request_id] = payload

    def snapshot(self):
        with self._lock:
            return dict(self._pending)

    def pending_count(self):
        # BAD (seeded): guarded read outside the lock -- lock-discipline.
        return len(self._pending)

    def bump(self, name):
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + 1
