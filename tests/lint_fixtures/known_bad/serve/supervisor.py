"""Known-bad fixture: exception handlers that silence faults.

Seeds the two shapes ``error-discipline`` forbids: a bare ``except:`` and a
broad ``except Exception`` whose body does nothing at all.
"""


def poll_manifest(read_manifest, directory):
    try:
        return read_manifest(directory)
    except:  # noqa: E722
        return None


def drain_responses(queue, sink):
    while True:
        try:
            sink.append(queue.get_nowait())
        except Exception:
            pass
