"""A shard router that mutates the map in place and reads pages raw.

Seeded violations for the ``shard-map-coherence`` rule: an in-place
``object.__setattr__`` on a frozen shard-map field, and a deployment walk
that reads shard pages through the raw page store instead of an engine.
"""

from repro.shard.deployment import read_shard_deployment


def widen_bound(info, union):
    # In-place mutation skips the constructors' validation entirely.
    object.__setattr__(info, "bound", union)
    return info


def scan_shard_pages(directory, store_for, page_id):
    deployment = read_shard_deployment(directory)
    payload = b""
    for path in deployment.shard_paths(directory):
        store = store_for(path)
        payload += store.load_page(page_id)
    return payload
