"""Known-bad fixture: replay applies records without an LSN order guard."""


def replay(engine, records):
    applied = 0
    for record in records:
        engine.apply_record(record)
        applied += 1
    return applied
