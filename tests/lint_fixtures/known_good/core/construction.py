"""True-negative construction module: canonical orders, owned generators."""

import random

import numpy as np


def build_order(cells, active):
    # Sets are fine as long as iteration happens in a canonical order.
    for oid in sorted({3, 1, 2}):
        yield oid
    for cell in sorted(cells.intersection(active), key=lambda c: c.oid):
        yield cell.oid


def shuffled_insertion(objects, seed):
    order = list(objects)
    # A caller-owned, explicitly seeded generator is deterministic.
    random.Random(seed).shuffle(order)
    return order


def jitter(count, seed):
    rng = np.random.default_rng(seed)
    return rng.random(count)


def tie_break(objects):
    return sorted(objects, key=lambda obj: obj.oid)
