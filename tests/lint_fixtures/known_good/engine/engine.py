"""True-negative engine module: guarded mutators, counted page I/O."""


class UVEngine:
    def __init__(self, backend, readonly=False):
        self.backend = backend
        self.readonly = readonly
        self._dirty = False

    def _check_writable(self, operation):
        if self.readonly:
            raise RuntimeError(f"read-only engine: {operation}")

    def insert(self, obj):
        self._check_writable("insert")
        self.backend.insert(obj)
        self._dirty = True

    def _rebuild_cell(self, obj):
        # Private helper: runs under an already-checked public entry.
        self.backend.insert(obj)

    def fetch(self, manager, page_id):
        # The counted path: DiskManager, not the raw PageStore.
        return manager.read_page(page_id)

    def flush(self, manager, page_id, payload):
        self._check_writable("flush")
        manager.write_page(page_id, payload)
        self._dirty = True


class ScratchBuffer:
    # No _check_writable: the readonly contract does not apply here.
    def __init__(self, backend):
        self.backend = backend

    def insert(self, obj):
        self.backend.insert(obj)
