"""Known-good fixture: the WAL append precedes the overlay mutation."""


class LiveEngine:
    def __init__(self, backend, wal):
        self.backend = backend
        self._wal = wal
        self._next_lsn = 0

    def insert(self, obj, payload):
        self._next_lsn += 1
        self._wal.append(1, payload, self._next_lsn)
        self.backend.insert(obj)
