"""True-negative scheduler module: module-level callables cross the boundary."""

from multiprocessing import Pool, Process


def _build_cell(cell):
    return cell.build()


def _monitor_loop(queue):
    while True:
        item = queue.get()
        if item is None:
            return


def build_partitions(cells, workers):
    with Pool(workers) as pool:
        built = pool.map(_build_cell, cells)
    return built


def launch_monitor(queue):
    worker = Process(target=_monitor_loop, args=(queue,))
    worker.start()
    return worker
