"""True-negative executor module: validated copies, counted page access."""


def widen_rings(config):
    # The instance's own .replace() re-runs __post_init__ validation.
    return config.replace(rings=config.rings * 2)


def prefetch(manager, page_ids):
    return [manager.read_page(page_id) for page_id in page_ids]


def drop(manager, page_id):
    manager.free_page(page_id)
