"""True-negative twin of the seeded PR 4 fixture: value comparison is fine."""


def degenerate_dominance(objects, winner):
    return {obj.oid: (1.0 if obj.oid == winner.oid else 0.0) for obj in objects}


def near_threshold(probability, tolerance=1e-9):
    return abs(probability - 1.0) <= tolerance


def sentinel_check(page):
    # Identity against the None singleton is legitimate.
    return page is None
