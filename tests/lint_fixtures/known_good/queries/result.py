"""True-negative result module: wire payloads round-trip; helpers are exempt."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ProbeResult:
    oid: int
    probability: float

    def to_dict(self):
        return {"oid": self.oid, "probability": self.probability}

    @classmethod
    def from_dict(cls, payload):
        return cls(oid=payload["oid"], probability=payload["probability"])


@dataclass(frozen=True)
class _ScratchStats:
    # Private: never crosses the wire, so no pair is required.
    probes: int


class RingBuffer:
    # Name does not mark it as a wire payload; no pair required.
    def __init__(self, capacity):
        self.capacity = capacity
        self.items = []
