"""True-negative descriptor module: frozen specs, a closed wire surface."""

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class ThresholdQuery:
    x: float
    y: float
    threshold: float

    def __post_init__(self):
        # The one blessed use of the escape hatch: construction-time
        # normalisation inside __post_init__.
        object.__setattr__(self, "threshold", max(0.0, min(1.0, self.threshold)))

    def to_dict(self):
        return {
            "type": "threshold",
            "x": self.x,
            "y": self.y,
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            x=payload["x"], y=payload["y"], threshold=payload["threshold"]
        )


@dataclass(frozen=True)
class RangeQuery:
    x: float
    y: float
    radius: float

    def to_dict(self):
        return {"type": "range", "x": self.x, "y": self.y, "radius": self.radius}

    @classmethod
    def from_dict(cls, payload):
        return cls(x=payload["x"], y=payload["y"], radius=payload["radius"])


Query = Union[ThresholdQuery, RangeQuery]

QUERY_TYPES = {
    "threshold": ThresholdQuery,
    "range": RangeQuery,
}
