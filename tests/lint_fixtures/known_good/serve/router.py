"""True-negative router module: every guarded access runs under its lock."""

import threading


class Router:
    _GUARDED_BY = {
        "_pending": "_lock",
        "counters": "_lock",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._pending = {}
        self.counters = {}

    def submit(self, request_id, payload):
        with self._lock:
            self._pending[request_id] = payload

    def snapshot(self):
        with self._lock:
            return dict(self._pending)

    def pending_count(self):
        with self._lock:
            return len(self._pending)

    def bump(self, name):
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + 1
            self._drain_locked()

    def _drain_locked(self):
        """Drop completed entries. Caller holds the lock."""
        self._pending.clear()
