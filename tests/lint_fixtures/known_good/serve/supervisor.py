"""Known-good fixture: the corrected twin of known_bad/serve/supervisor.py.

Handlers name the exceptions the operation can actually raise, and the one
broad catch handles what it caught (counts it and degrades) instead of
silently discarding it.
"""

import queue as queue_module


def poll_manifest(read_manifest, directory):
    try:
        return read_manifest(directory)
    except (OSError, ValueError):
        return None  # flip in progress or transient read error; retry next poll


def drain_responses(queue, sink, errors):
    while True:
        try:
            sink.append(queue.get_nowait())
        except queue_module.Empty:
            return
        except Exception as exc:  # noqa: BLE001 - the drain loop must survive
            errors.append(f"{type(exc).__name__}: {exc}")
