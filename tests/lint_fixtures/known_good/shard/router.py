"""The corrected twin: rebuild through constructors, read through engines."""

from repro.shard.deployment import read_shard_deployment
from repro.shard.map import ShardInfo


def widen_bound(info, union):
    # A changed bound is a new validated ShardInfo, never a mutation.
    return ShardInfo(
        shard_id=info.shard_id,
        tile=info.tile,
        bound=union,
        objects=info.objects,
        max_radius=info.max_radius,
    )


def scan_shard_objects(directory, open_engine):
    deployment = read_shard_deployment(directory)
    total = 0
    for path in deployment.shard_paths(directory):
        engine = open_engine(path)
        total += len(engine)
    return total
