"""Known-good fixture: replay guarded by a strictly-increasing LSN check."""


def replay(engine, records, after_lsn=0):
    last_lsn = after_lsn
    applied = 0
    for record in records:
        if record.lsn <= last_lsn:
            raise ValueError(f"replay out of LSN order: {record.lsn}")
        engine.apply_record(record)
        last_lsn = record.lsn
        applied += 1
    return applied
