"""Tests for the experiment harness and the report formatting."""

import pytest

from repro.analysis.experiments import (
    compare_query_performance,
    run_construction_experiment,
    run_query_experiment,
)
from repro.analysis.report import format_comparison, format_table, ratio, series_summary
from repro.datasets.loader import load_dataset


@pytest.fixture(scope="module")
def tiny_bundle():
    return load_dataset("uniform", 40, diameter=300.0, query_count=6, seed=13)


class TestReportFormatting:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [["alpha", 1.2345], ["b", 20]],
            title="demo",
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.234" in table
        assert "20" in table

    def test_format_comparison_includes_both_series(self):
        text = format_comparison(
            "Fig X", {10: 1.0, 20: 2.0}, {10: 0.5, 20: 1.0, 30: 2.0}, "ms", "ms"
        )
        assert "Fig X" in text
        assert "30" in text

    def test_series_summary_trends(self):
        assert "increasing" in series_summary({1: 1.0, 2: 2.0, 3: 3.0})
        assert "decreasing" in series_summary({1: 3.0, 2: 2.0, 3: 1.0})
        assert "non-monotonic" in series_summary({1: 1.0, 2: 3.0, 3: 2.0})
        assert series_summary({}) == "(empty series)"

    def test_ratio_helper(self):
        assert ratio(4.0, 2.0) == 2.0
        assert ratio(1.0, 0.0) == float("inf")
        assert ratio(0.0, 0.0) == 0.0


class TestQueryExperiment:
    def test_run_query_experiment_structure(self, tiny_bundle):
        results = run_query_experiment(
            tiny_bundle, page_capacity=8, seed_knn=20, compute_probabilities=False
        )
        assert set(results) == {"uv-index", "r-tree"}
        for result in results.values():
            assert result.queries == len(tiny_bundle.queries)
            assert result.avg_time_ms >= 0.0
            assert result.avg_io >= 0.0
            assert result.avg_answers >= 1.0
        comparison = compare_query_performance(results)
        assert comparison["io_ratio_rtree_over_uv"] > 0.0

    def test_timing_buckets_per_query(self, tiny_bundle):
        results = run_query_experiment(
            tiny_bundle, page_capacity=8, seed_knn=20, compute_probabilities=True
        )
        uv = results["uv-index"]
        per_query = uv.timing_ms()
        assert set(per_query) == {"index", "object_retrieval", "probability"}
        assert sum(per_query.values()) == pytest.approx(uv.avg_time_ms, rel=0.2)

    def test_unknown_construction_rejected(self, tiny_bundle):
        with pytest.raises(ValueError):
            run_query_experiment(tiny_bundle, construction="basic")


class TestConstructionExperiment:
    def test_ic_and_icr_runs(self, tiny_bundle):
        ic = run_construction_experiment(tiny_bundle, method="ic", page_capacity=8, seed_knn=20)
        icr = run_construction_experiment(tiny_bundle, method="icr", page_capacity=8, seed_knn=20)
        assert ic.method == "ic"
        assert icr.method == "icr"
        assert ic.seconds > 0.0
        assert icr.stats.avg_r_objects > 0.0
        assert "pruning" in ic.phase_fractions()

    def test_basic_run_small(self):
        bundle = load_dataset("uniform", 15, diameter=300.0, query_count=2, seed=14)
        basic = run_construction_experiment(bundle, method="basic", page_capacity=8)
        assert basic.method == "basic"
        assert basic.stats.avg_r_objects > 0.0
