"""Acceptance parity check: the engine answers PNN identically -- same answer
sets and same qualification probabilities -- through all three backend
families, on 200-object uniform datasets over seeds 0-2."""

import pytest

from repro import DiagramConfig, QueryEngine, generate_query_points, generate_uniform_objects
from repro.core.uv_cell import answer_objects_brute_force


CONFIG = DiagramConfig(page_capacity=16, seed_knn=60, rtree_fanout=16,
                       grid_resolution=16)
BACKENDS = ("ic", "rtree", "grid")


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pnn_parity_on_200_uniform_objects(seed):
    objects, domain = generate_uniform_objects(200, seed=seed, diameter=300.0)
    engines = {
        name: QueryEngine.build(objects, domain, CONFIG.replace(backend=name))
        for name in BACKENDS
    }
    workload = generate_query_points(10, domain, seed=seed + 100)

    # Answer sets match brute force on every backend for every query.
    for q in workload:
        expected = answer_objects_brute_force(objects, q)
        for name, engine in engines.items():
            got = sorted(engine.pnn(q, compute_probabilities=False).answer_ids)
            assert got == expected, f"{name} diverged at seed {seed}, query {q}"

    # Probabilities agree across backends (same objects, same integration).
    for q in workload[:3]:
        reference = engines["ic"].pnn(q).probabilities
        for name in BACKENDS[1:]:
            probabilities = engines[name].pnn(q).probabilities
            assert probabilities.keys() == reference.keys()
            for oid, p in reference.items():
                assert probabilities[oid] == pytest.approx(p, abs=1e-9), name
