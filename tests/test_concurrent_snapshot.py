"""Concurrent readers over one mmap snapshot answer bit-identically.

The serving layer's scaling story rests on a storage-level guarantee: any
number of processes may ``QueryEngine.open(path, store="mmap")`` the same
snapshot simultaneously, and every one of them answers exactly like a
single-process engine -- same answer sets, same probabilities (bit-for-bit),
same counted page reads -- while the snapshot file itself stays untouched.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys

import pytest

from repro import DiagramConfig, QueryEngine
from repro.queries.spec import PNNQuery
from repro.storage.pagestore import FilePageStore, MemoryPageStore, MmapPageStore

QUERY_POINTS = [
    (120.0, 140.0), (480.0, 520.0), (910.0, 130.0),
    (333.0, 777.0), (505.0, 505.0), (60.0, 940.0),
]

# Each reader process opens the snapshot read-only over mmap, runs the fixed
# workload, and prints the serialized results (timings stripped: wall-clock
# is the one legitimately nondeterministic field).
READER_SCRIPT = """
import json, sys
from repro import QueryEngine
from repro.queries.spec import PNNQuery
from repro.geometry.point import Point

engine = QueryEngine.open(sys.argv[1], store="mmap", readonly=True)
results = []
for x, y in json.loads(sys.argv[2]):
    result = engine.execute(PNNQuery(Point(x, y), threshold=0.05)).to_dict()
    result["timing"] = None
    results.append(result)
print(json.dumps(results))
"""


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory, medium_dataset):
    objects, domain = medium_dataset
    engine = QueryEngine.build(
        objects, domain, DiagramConfig(backend="ic", buffer_pages=16)
    )
    path = str(tmp_path_factory.mktemp("concurrent") / "engine.snap")
    engine.save(path)
    return path


def _reference_results(snapshot):
    engine = QueryEngine.open(snapshot, store="mmap", readonly=True)
    results = []
    for x, y in QUERY_POINTS:
        from repro.geometry.point import Point

        result = engine.execute(PNNQuery(Point(x, y), threshold=0.05)).to_dict()
        result["timing"] = None
        results.append(result)
    return results


def test_four_processes_answer_bit_identically(snapshot):
    expected = _reference_results(snapshot)
    workload = json.dumps(QUERY_POINTS)
    readers = [
        subprocess.Popen(
            [sys.executable, "-c", READER_SCRIPT, snapshot, workload],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(4)
    ]
    outputs = []
    for reader in readers:
        stdout, stderr = reader.communicate(timeout=120)
        assert reader.returncode == 0, stderr
        outputs.append(json.loads(stdout))
    for output in outputs:
        # Bit-identical: probabilities, answer order, and page-read counts
        # all match the single-process engine exactly.
        assert output == expected


def test_concurrent_reads_leave_the_snapshot_untouched(snapshot):
    def digest():
        with open(snapshot, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()

    before = digest()
    workload = json.dumps(QUERY_POINTS)
    readers = [
        subprocess.Popen(
            [sys.executable, "-c", READER_SCRIPT, snapshot, workload],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for _ in range(2)
    ]
    for reader in readers:
        _, stderr = reader.communicate(timeout=120)
        assert reader.returncode == 0, stderr
    assert digest() == before


def test_many_engines_in_one_process_agree(snapshot):
    from repro.geometry.point import Point

    engines = [
        QueryEngine.open(snapshot, store="mmap", readonly=True) for _ in range(4)
    ]
    for x, y in QUERY_POINTS:
        results = [
            engine.execute(PNNQuery(Point(x, y), threshold=0.05))
            for engine in engines
        ]
        reference = results[0]
        for result in results[1:]:
            assert result.answers == reference.answers
            assert result.io == reference.io


def test_store_thread_safety_flags():
    # The router relies on these declarations: mmap and memory stores do
    # stateless reads, the file store moves a shared cursor (seek + read).
    assert MmapPageStore.thread_safe_reads is True
    assert MemoryPageStore.thread_safe_reads is True
    assert FilePageStore.thread_safe_reads is False
