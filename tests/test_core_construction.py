"""Tests for the Basic / ICR / IC construction pipelines."""

import numpy as np
import pytest

from repro.core.construction import (
    build_uv_index_basic,
    build_uv_index_ic,
    build_uv_index_icr,
)
from repro.core.pnn import UVIndexPNN
from repro.core.uv_cell import answer_objects_brute_force
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.tree import RTree
from repro.uncertain.objects import UncertainObject


DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


def make_objects(count, seed=0, radius=30.0):
    rng = np.random.default_rng(seed)
    return [
        UncertainObject.uniform(
            i,
            Point(float(rng.uniform(radius, 1000.0 - radius)),
                  float(rng.uniform(radius, 1000.0 - radius))),
            radius,
        )
        for i in range(count)
    ]


@pytest.fixture(scope="module")
def shared_dataset():
    objects = make_objects(35, seed=21)
    rtree = RTree.bulk_load(objects, fanout=8)
    return objects, rtree


@pytest.fixture(scope="module")
def built_indexes(shared_dataset):
    objects, rtree = shared_dataset
    ic_index, ic_stats = build_uv_index_ic(
        objects, DOMAIN, rtree=rtree, page_capacity=4, seed_knn=15
    )
    icr_index, icr_stats = build_uv_index_icr(
        objects, DOMAIN, rtree=rtree, page_capacity=4, seed_knn=15
    )
    basic_index, basic_stats = build_uv_index_basic(
        objects, DOMAIN, page_capacity=4
    )
    return {
        "ic": (ic_index, ic_stats),
        "icr": (icr_index, icr_stats),
        "basic": (basic_index, basic_stats),
    }


class TestStatsStructure:
    def test_ic_stats(self, built_indexes, shared_dataset):
        objects, _ = shared_dataset
        _, stats = built_indexes["ic"]
        assert stats.method == "ic"
        assert stats.objects == len(objects)
        assert stats.total_seconds > 0.0
        assert set(stats.timing.buckets) == {"pruning", "indexing"}
        assert 0.0 < stats.i_pruning_ratio <= 1.0
        assert 0.0 < stats.c_pruning_ratio <= 1.0
        assert stats.avg_cr_objects > 0.0

    def test_icr_stats_include_r_object_phase(self, built_indexes):
        _, stats = built_indexes["icr"]
        assert set(stats.timing.buckets) == {"pruning", "r_objects", "indexing"}
        assert stats.avg_r_objects > 0.0
        # Refinement never increases the reference set.
        assert stats.avg_r_objects <= stats.avg_cr_objects + 1e-9

    def test_basic_stats(self, built_indexes):
        _, stats = built_indexes["basic"]
        assert stats.method == "basic"
        assert set(stats.timing.buckets) == {"r_objects", "indexing"}
        assert stats.i_pruning_ratio == 0.0

    def test_phase_fractions_sum_to_one(self, built_indexes):
        for _, stats in built_indexes.values():
            fractions = stats.phase_fractions()
            assert sum(fractions.values()) == pytest.approx(1.0)


class TestRelativeCost:
    def test_ic_not_slower_than_icr_and_basic(self, built_indexes):
        ic_seconds = built_indexes["ic"][1].total_seconds
        icr_seconds = built_indexes["icr"][1].total_seconds
        basic_seconds = built_indexes["basic"][1].total_seconds
        # The paper's headline ordering: Basic >> ICR > IC.  At this tiny
        # scale we only require IC to be the cheapest and Basic the priciest.
        assert ic_seconds <= icr_seconds * 1.5
        assert ic_seconds < basic_seconds

    def test_icr_r_object_phase_dominates(self, built_indexes):
        _, stats = built_indexes["icr"]
        fractions = stats.phase_fractions()
        # The paper observes that generating exact r-objects is the dominant
        # cost of ICR (Figure 7(d)).
        assert fractions["r_objects"] >= fractions["indexing"]


class TestQueryEquivalence:
    def test_all_methods_answer_identically(self, built_indexes, shared_dataset):
        objects, _ = shared_dataset
        processors = {
            name: UVIndexPNN(index, objects=objects)
            for name, (index, _) in built_indexes.items()
        }
        rng = np.random.default_rng(5)
        for _ in range(15):
            q = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            expected = answer_objects_brute_force(objects, q)
            for name, pnn in processors.items():
                got = sorted(pnn.query(q, compute_probabilities=False).answer_ids)
                assert got == expected, f"{name} disagreed at {q}"

    def test_invalid_method_rejected(self, shared_dataset):
        objects, _ = shared_dataset
        from repro.core.diagram import UVDiagram

        with pytest.raises(ValueError):
            UVDiagram.build(objects, DOMAIN, method="bogus")
