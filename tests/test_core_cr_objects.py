"""Tests for cr-object derivation (Algorithm 2: seeds, I-pruning, C-pruning)."""

import numpy as np
import pytest

from repro.core.cr_objects import CRObjectFinder
from repro.core.uv_cell import build_exact_uv_cell
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.tree import RTree
from repro.uncertain.objects import UncertainObject


DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


def make_objects(count, seed=0, radius=20.0):
    rng = np.random.default_rng(seed)
    return [
        UncertainObject.uniform(
            i,
            Point(float(rng.uniform(radius, 1000.0 - radius)),
                  float(rng.uniform(radius, 1000.0 - radius))),
            radius,
        )
        for i in range(count)
    ]


@pytest.fixture(scope="module")
def dataset():
    objects = make_objects(60, seed=8)
    finder = CRObjectFinder(objects, DOMAIN, seed_knn=30, seed_sectors=8)
    return objects, finder


class TestSeedSelection:
    def test_at_most_one_seed_per_sector(self, dataset):
        objects, finder = dataset
        seeds = finder.select_seeds(objects[0])
        assert 1 <= len(seeds) <= finder.seed_sectors
        assert objects[0].oid not in seeds

    def test_seeds_are_nearby_objects(self, dataset):
        objects, finder = dataset
        owner = objects[0]
        seeds = finder.select_seeds(owner)
        by_id = {o.oid: o for o in objects}
        seed_dists = [owner.center.distance_to(by_id[s].center) for s in seeds]
        all_dists = sorted(
            owner.center.distance_to(o.center) for o in objects if o.oid != owner.oid
        )
        # Every seed is within the closest half of the dataset.
        cutoff = all_dists[len(all_dists) // 2]
        assert all(d <= cutoff for d in seed_dists)

    def test_initial_region_smaller_than_domain(self, dataset):
        objects, finder = dataset
        owner = objects[0]
        seeds = finder.select_seeds(owner)
        region = finder.initial_possible_region(owner, seeds)
        assert region.area() < DOMAIN.area()
        assert region.contains(owner.center)


class TestIPruning:
    def test_survivors_have_centres_within_lemma2_circle(self, dataset):
        objects, finder = dataset
        owner = objects[0]
        region = finder.initial_possible_region(owner, finder.select_seeds(owner))
        survivors = finder.index_prune(owner, region)
        d = region.max_distance_from_center()
        radius = 2.0 * d - owner.radius
        by_id = {o.oid: o for o in objects}
        for oid in survivors:
            assert owner.center.distance_to(by_id[oid].center) <= radius + 1e-9
        assert owner.oid not in survivors

    def test_pruned_objects_cannot_shape_the_region(self, dataset):
        """Lemma 2 soundness: an object pruned by I-pruning cannot shrink the
        possible region any further."""
        objects, finder = dataset
        owner = objects[3]
        region = finder.initial_possible_region(owner, finder.select_seeds(owner))
        survivors = set(finder.index_prune(owner, region))
        area_before = region.area()
        for other in objects:
            if other.oid == owner.oid or other.oid in survivors:
                continue
            changed = region.refine(other)
            assert not changed
            assert region.area() == pytest.approx(area_before, rel=1e-9)


class TestCPruning:
    def test_c_pruning_only_removes_candidates(self, dataset):
        objects, finder = dataset
        owner = objects[5]
        region = finder.initial_possible_region(owner, finder.select_seeds(owner))
        candidates = finder.index_prune(owner, region)
        survivors = finder.computational_prune(owner, region, candidates)
        assert set(survivors) <= set(candidates)

    def test_c_pruned_objects_cannot_shape_the_region(self, dataset):
        """Lemma 3 soundness check, same style as the I-pruning test."""
        objects, finder = dataset
        owner = objects[7]
        region = finder.initial_possible_region(owner, finder.select_seeds(owner))
        candidates = finder.index_prune(owner, region)
        survivors = set(finder.computational_prune(owner, region, candidates))
        pruned = [oid for oid in candidates if oid not in survivors]
        by_id = {o.oid: o for o in objects}
        area_before = region.area()
        for oid in pruned:
            assert not region.refine(by_id[oid])
            assert region.area() == pytest.approx(area_before, rel=1e-9)


class TestFullAlgorithm:
    def test_result_structure(self, dataset):
        objects, finder = dataset
        result = finder.find(objects[0])
        assert result.oid == objects[0].oid
        assert objects[0].oid not in result.cr_objects
        assert 0.0 <= result.i_pruning_ratio <= 1.0
        assert 0.0 <= result.c_pruning_ratio <= 1.0
        assert result.c_pruning_ratio >= result.i_pruning_ratio - 0.2
        assert set(result.timing.buckets) == {"seed", "i_prune", "c_prune"}

    def test_cr_objects_contain_all_r_objects(self, dataset):
        """The defining guarantee: F_i is a subset of C_i."""
        objects, finder = dataset
        by_id = {o.oid: o for o in objects}
        for owner in objects[:8]:
            result = finder.find(owner)
            exact = build_exact_uv_cell(
                owner,
                [o for o in objects if o.oid != owner.oid],
                DOMAIN,
                arc_samples=14,
            )
            assert set(exact.r_objects) <= set(result.cr_objects), (
                f"object {owner.oid}: r-objects {exact.r_objects} "
                f"not covered by cr-objects {result.cr_objects}"
            )

    def test_pruning_is_effective(self, dataset):
        objects, finder = dataset
        result = finder.find(objects[11])
        assert len(result.cr_objects) < len(objects) / 2

    def test_find_all_covers_every_object(self):
        objects = make_objects(20, seed=9)
        finder = CRObjectFinder(objects, DOMAIN, seed_knn=10)
        results = finder.find_all()
        assert sorted(results.keys()) == [o.oid for o in objects]

    def test_uses_supplied_rtree(self):
        objects = make_objects(25, seed=10)
        rtree = RTree.bulk_load(objects, fanout=8)
        finder = CRObjectFinder(objects, DOMAIN, rtree=rtree, seed_knn=10)
        result = finder.find(objects[0])
        assert result.cr_objects
