"""Tests for the UVDiagram facade."""

import pytest

from repro import UVDiagram
from repro.core.uv_cell import answer_objects_brute_force
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect


class TestBuild:
    def test_build_rejects_empty_dataset(self, small_domain):
        with pytest.raises(ValueError):
            UVDiagram.build([], small_domain)

    def test_build_records_construction_stats(self, small_diagram):
        stats = small_diagram.construction_stats
        assert stats is not None
        assert stats.method == "ic"
        assert stats.objects == len(small_diagram)

    def test_len_and_object_lookup(self, small_diagram, small_objects):
        assert len(small_diagram) == len(small_objects)
        assert small_diagram.object(3).oid == 3
        with pytest.raises(KeyError):
            small_diagram.object(999)

    def test_index_statistics_exposed(self, small_diagram):
        stats = small_diagram.index_statistics()
        assert stats["objects"] == float(len(small_diagram))


class TestQueries:
    def test_pnn_and_rtree_agree(self, small_diagram, small_objects):
        queries = [Point(120.0, 430.0), Point(555.0, 666.0), Point(900.0, 100.0)]
        for q in queries:
            uv = sorted(small_diagram.pnn(q, compute_probabilities=False).answer_ids)
            rt = sorted(small_diagram.pnn_rtree(q, compute_probabilities=False).answer_ids)
            bf = answer_objects_brute_force(small_objects, q)
            assert uv == bf
            assert rt == bf

    def test_answer_objects_shortcut(self, small_diagram, small_objects):
        q = Point(321.0, 654.0)
        assert sorted(small_diagram.answer_objects(q)) == answer_objects_brute_force(
            small_objects, q
        )

    def test_pattern_queries(self, small_diagram, small_domain):
        oid = small_diagram.objects[0].oid
        area = small_diagram.uv_cell_area(oid)
        assert 0.0 < area <= small_domain.area()
        extent = small_diagram.uv_cell_extent(oid)
        assert extent is not None
        partitions = small_diagram.partitions_in(Rect(0.0, 0.0, 400.0, 400.0))
        assert partitions.partitions

    def test_medium_diagram_consistency(self, medium_diagram, medium_dataset, medium_queries):
        objects, _ = medium_dataset
        for q in medium_queries[:8]:
            uv = sorted(medium_diagram.pnn(q, compute_probabilities=False).answer_ids)
            assert uv == answer_objects_brute_force(objects, q)

    def test_uv_index_fewer_reads_than_rtree(self, medium_diagram, medium_queries):
        """The headline I/O claim of Figure 6(b), at small scale: the
        UV-index needs no more leaf reads than the R-tree baseline."""
        uv_io = 0
        rtree_io = 0
        for q in medium_queries[:10]:
            uv_io += medium_diagram.pnn(q, compute_probabilities=False).io.page_reads
            rtree_io += medium_diagram.pnn_rtree(q, compute_probabilities=False).io.page_reads
        assert uv_io <= rtree_io
