"""Tests for PNN evaluation over the UV-index and the pattern-analysis queries."""

import numpy as np
import pytest

from repro.core.pattern import PatternAnalyzer
from repro.core.pnn import UVIndexPNN
from repro.core.uv_cell import answer_objects_brute_force
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect


class TestUVIndexPNN:
    def test_matches_brute_force(self, small_diagram, small_objects):
        rng = np.random.default_rng(3)
        for _ in range(20):
            q = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            got = sorted(small_diagram.pnn(q, compute_probabilities=False).answer_ids)
            assert got == answer_objects_brute_force(small_objects, q)

    def test_probabilities_sum_to_one(self, small_diagram):
        result = small_diagram.pnn(Point(430.0, 520.0))
        assert result.answers
        assert result.total_probability() == pytest.approx(1.0, abs=1e-6)

    def test_probabilities_ranked_sensibly(self, small_objects, small_diagram):
        # Query right at an object's centre: that object should be the most
        # probable nearest neighbour.
        target = small_objects[4]
        result = small_diagram.pnn(target.center)
        assert result.top() is not None
        assert result.top().oid == target.oid

    def test_timing_and_io_recorded(self, small_diagram):
        result = small_diagram.pnn(Point(100.0, 200.0))
        assert result.io is not None
        assert result.io.page_reads >= 1
        assert result.timing is not None
        assert result.timing.total() > 0.0

    def test_requires_store_or_objects(self, small_diagram):
        with pytest.raises(ValueError):
            UVIndexPNN(small_diagram.index)

    def test_in_memory_objects_variant(self, small_diagram, small_objects):
        pnn = UVIndexPNN(small_diagram.index, objects=small_objects)
        result = pnn.query(Point(500.0, 500.0), compute_probabilities=False)
        assert sorted(result.answer_ids) == answer_objects_brute_force(
            small_objects, Point(500.0, 500.0)
        )


class TestPatternAnalyzer:
    def test_uv_cell_area_positive_and_bounded(self, small_diagram, small_objects, small_domain):
        analyzer = PatternAnalyzer(small_diagram.index)
        for obj in small_objects:
            area = analyzer.uv_cell_area(obj.oid)
            assert 0.0 < area <= small_domain.area() + 1e-6

    def test_uv_cell_areas_cover_domain(self, small_diagram, small_objects, small_domain):
        analyzer = PatternAnalyzer(small_diagram.index)
        total = sum(analyzer.uv_cell_area(obj.oid) for obj in small_objects)
        assert total >= small_domain.area() * 0.99

    def test_uv_cell_extent_contains_object(self, small_diagram, small_objects):
        analyzer = PatternAnalyzer(small_diagram.index)
        for obj in small_objects[:5]:
            extent = analyzer.uv_cell_extent(obj.oid)
            assert extent is not None
            assert extent.contains_point(obj.center)

    def test_cell_leaf_regions_nonempty(self, small_diagram, small_objects):
        analyzer = PatternAnalyzer(small_diagram.index)
        regions = analyzer.uv_cell_leaf_regions(small_objects[0].oid)
        assert regions

    def test_partitions_in_region(self, small_diagram, small_domain):
        analyzer = PatternAnalyzer(small_diagram.index)
        window = Rect(100.0, 100.0, 500.0, 500.0)
        result = analyzer.partitions_in(window)
        assert result.partitions
        for partition in result.partitions:
            assert partition.region.intersects(window)
            assert partition.object_count >= 0
            if partition.region.area() > 0:
                assert partition.density == pytest.approx(
                    partition.object_count / partition.region.area()
                )
        assert result.io.page_reads >= 1
        assert result.seconds >= 0.0
        assert result.total_objects() >= 1

    def test_larger_window_returns_at_least_as_many_partitions(self, small_diagram):
        analyzer = PatternAnalyzer(small_diagram.index)
        small_window = Rect(400.0, 400.0, 500.0, 500.0)
        big_window = Rect(100.0, 100.0, 900.0, 900.0)
        assert len(analyzer.partitions_in(big_window).partitions) >= len(
            analyzer.partitions_in(small_window).partitions
        )

    def test_precomputed_counts_skip_io(self, small_diagram):
        analyzer = PatternAnalyzer(small_diagram.index, precompute=True)
        before = small_diagram.index.disk.stats.snapshot()
        analyzer.partitions_in(Rect(0.0, 0.0, 1000.0, 1000.0))
        delta = small_diagram.index.disk.stats.delta(before)
        assert delta.page_reads == 0

    def test_density_histogram(self, small_diagram):
        analyzer = PatternAnalyzer(small_diagram.index)
        histogram = analyzer.density_histogram(Rect(0.0, 0.0, 1000.0, 1000.0), bins=5)
        assert len(histogram) == 5
        assert sum(histogram) > 0
