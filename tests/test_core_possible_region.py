"""Tests for possible regions and their refinement."""

import pytest

from repro.core.possible_region import PossibleRegion
from repro.core.uv_edge import UVEdge
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject


DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


def obj(oid, x, y, r=20.0):
    return UncertainObject.uniform(oid, Point(x, y), r)


class TestInitialState:
    def test_starts_as_domain(self):
        region = PossibleRegion(obj(0, 500, 500), DOMAIN)
        assert region.area() == pytest.approx(DOMAIN.area())
        assert region.contains(Point(10.0, 990.0))
        assert not region.is_empty()

    def test_max_distance_from_center(self):
        region = PossibleRegion(obj(0, 0.0 + 20.0, 20.0), DOMAIN)
        # Farthest domain corner from (20, 20) is (1000, 1000).
        expected = Point(20.0, 20.0).distance_to(Point(1000.0, 1000.0))
        assert region.max_distance_from_center() == pytest.approx(expected)


class TestRefinement:
    def test_refine_shrinks_region(self):
        owner = obj(0, 300.0, 500.0)
        other = obj(1, 700.0, 500.0)
        region = PossibleRegion(owner, DOMAIN)
        changed = region.refine(other)
        assert changed
        assert region.area() < DOMAIN.area()
        assert 1 in region.contributors

    def test_refine_keeps_owner_region_inside(self):
        owner = obj(0, 300.0, 500.0, r=30.0)
        region = PossibleRegion(owner, DOMAIN)
        for i, (x, y) in enumerate([(700, 500), (300, 100), (300, 900), (50, 500)], start=1):
            region.refine(obj(i, float(x), float(y)))
        # Every point of the owner's uncertainty region is trivially a point
        # where the owner can be the NN, so it must stay in the region.
        for p in owner.region.sample_boundary(16):
            assert region.contains(p)
        assert region.contains(owner.center)

    def test_refine_by_self_is_noop(self):
        owner = obj(0, 300.0, 500.0)
        region = PossibleRegion(owner, DOMAIN)
        assert not region.refine(owner)
        assert region.area() == pytest.approx(DOMAIN.area())

    def test_refine_with_overlapping_object_is_noop(self):
        owner = obj(0, 300.0, 500.0, r=60.0)
        overlapping = obj(1, 330.0, 500.0, r=60.0)
        region = PossibleRegion(owner, DOMAIN)
        assert not region.refine(overlapping)
        assert region.area() == pytest.approx(DOMAIN.area())

    def test_refine_with_distant_object_is_noop_after_shrinking(self):
        owner = obj(0, 200.0, 200.0)
        near = obj(1, 300.0, 200.0)
        region = PossibleRegion(owner, DOMAIN)
        region.refine(near)
        area_after_near = region.area()
        # An object far outside the current region's reach cannot shrink it
        # further than marginally (it may still cut a corner of the domain).
        far = obj(2, 980.0, 980.0)
        region.refine(far)
        assert region.area() <= area_after_near + 1e-9

    def test_refine_all_reports_effective_objects(self):
        owner = obj(0, 500.0, 500.0)
        others = [obj(1, 600.0, 500.0), obj(2, 400.0, 500.0), obj(3, 505.0, 500.0, r=40.0)]
        region = PossibleRegion(owner, DOMAIN)
        effective = region.refine_all(others)
        assert 1 in effective and 2 in effective
        assert 3 not in effective  # overlaps the owner, no UV-edge

    def test_semantics_of_refined_region(self):
        """After refining by a set of objects, a point is kept iff no outside
        region of those objects contains it (up to boundary sampling error)."""
        owner = obj(0, 400.0, 400.0)
        others = [obj(1, 700.0, 400.0), obj(2, 400.0, 800.0), obj(3, 150.0, 250.0)]
        region = PossibleRegion(owner, DOMAIN, arc_samples=24, edge_samples=10)
        region.refine_all(others)
        edges = [UVEdge.between(owner, other) for other in others]
        for p in DOMAIN.sample_grid(12):
            excluded = any(e.in_outside_region(p) for e in edges)
            margin = min(abs(e.edge_value(p)) for e in edges)
            if margin < 5.0:
                continue  # too close to a boundary for a sampled polygon
            assert region.contains(p) == (not excluded)


class TestProvenance:
    def test_boundary_objects_identifies_shapers(self):
        owner = obj(0, 400.0, 500.0)
        near = obj(1, 600.0, 500.0)
        far = obj(2, 900.0, 900.0)
        region = PossibleRegion(owner, DOMAIN, arc_samples=20)
        region.refine_all([near, far])
        r_objects = region.boundary_objects([near, far])
        assert 1 in r_objects

    def test_boundary_objects_empty_for_unrefined_region(self):
        owner = obj(0, 400.0, 500.0)
        region = PossibleRegion(owner, DOMAIN)
        assert region.boundary_objects([obj(1, 800.0, 800.0)]) == []

    def test_convex_hull_vertices_cover_region(self):
        owner = obj(0, 400.0, 500.0)
        region = PossibleRegion(owner, DOMAIN)
        region.refine_all([obj(1, 600.0, 500.0), obj(2, 200.0, 300.0)])
        hull = region.convex_hull_vertices()
        assert len(hull) >= 3
        from repro.geometry.hull import point_in_convex_hull

        for vertex in region.polygon.vertices:
            assert point_in_convex_hull(vertex, hull, tol=1e-6)
