"""Tests for incremental insertion and deletion on a built UV-diagram."""

import numpy as np
import pytest

from repro import UVDiagram
from repro.core.updates import UVDiagramUpdater
from repro.core.uv_cell import answer_objects_brute_force
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject


DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


def make_objects(count, seed=0, radius=30.0):
    rng = np.random.default_rng(seed)
    return [
        UncertainObject.uniform(
            i,
            Point(float(rng.uniform(radius, 1000.0 - radius)),
                  float(rng.uniform(radius, 1000.0 - radius))),
            radius,
        )
        for i in range(count)
    ]


@pytest.fixture()
def updatable_diagram():
    objects = make_objects(35, seed=51)
    diagram = UVDiagram.build(objects, DOMAIN, page_capacity=8, seed_knn=20,
                              rtree_fanout=8)
    updater = UVDiagramUpdater(diagram, seed_knn=20)
    return diagram, updater


def queries(seed=77, count=15):
    rng = np.random.default_rng(seed)
    return [
        Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
        for _ in range(count)
    ]


def assert_consistent(diagram):
    for q in queries():
        expected = answer_objects_brute_force(diagram.objects, q)
        assert sorted(diagram.pnn(q, compute_probabilities=False).answer_ids) == expected
        assert sorted(diagram.pnn_rtree(q, compute_probabilities=False).answer_ids) == expected


class TestInsertion:
    def test_insert_keeps_queries_correct(self, updatable_diagram):
        diagram, updater = updatable_diagram
        new_object = UncertainObject.uniform(1000, Point(512.0, 488.0), 40.0)
        cr_objects = updater.insert(new_object)
        assert cr_objects
        assert len(diagram) == 36
        assert diagram.object(1000).oid == 1000
        assert_consistent(diagram)

    def test_inserted_object_is_answer_near_itself(self, updatable_diagram):
        diagram, updater = updatable_diagram
        new_object = UncertainObject.uniform(1000, Point(250.0, 750.0), 35.0)
        updater.insert(new_object)
        result = diagram.pnn(new_object.center, compute_probabilities=False)
        assert 1000 in result.answer_ids

    def test_duplicate_id_rejected(self, updatable_diagram):
        diagram, updater = updatable_diagram
        with pytest.raises(ValueError):
            updater.insert(UncertainObject.uniform(0, Point(100.0, 100.0), 10.0))

    def test_multiple_insertions(self, updatable_diagram):
        diagram, updater = updatable_diagram
        rng = np.random.default_rng(3)
        for i in range(5):
            obj = UncertainObject.uniform(
                2000 + i,
                Point(float(rng.uniform(50, 950)), float(rng.uniform(50, 950))),
                25.0,
            )
            updater.insert(obj)
        assert len(diagram) == 40
        assert_consistent(diagram)


class TestDeletion:
    def test_remove_keeps_queries_correct(self, updatable_diagram):
        diagram, updater = updatable_diagram
        removed_neighbours = updater.remove(5)
        assert 5 not in diagram.by_id
        assert len(diagram) == 34
        # Objects that referenced the removed object were refreshed.
        assert all(oid in diagram.by_id for oid in removed_neighbours)
        assert_consistent(diagram)

    def test_removed_object_never_returned(self, updatable_diagram):
        diagram, updater = updatable_diagram
        target = diagram.object(7)
        updater.remove(7)
        result = diagram.pnn(target.center, compute_probabilities=False)
        assert 7 not in result.answer_ids

    def test_remove_unknown_raises(self, updatable_diagram):
        _, updater = updatable_diagram
        with pytest.raises(KeyError):
            updater.remove(9999)

    def test_insert_then_remove_roundtrip(self, updatable_diagram):
        diagram, updater = updatable_diagram
        obj = UncertainObject.uniform(3000, Point(444.0, 555.0), 30.0)
        updater.insert(obj)
        updater.remove(3000)
        assert len(diagram) == 35
        assert 3000 not in diagram.by_id
        assert_consistent(diagram)


class TestBookkeeping:
    def test_reference_map_consistency(self, updatable_diagram):
        _, updater = updatable_diagram
        for oid, referencing in updater._referencing.items():
            for referrer in referencing:
                assert oid in updater.cr_objects_of(referrer)

    def test_referencing_accessor(self, updatable_diagram):
        _, updater = updatable_diagram
        some_object = next(iter(updater._cr_sets))
        for cr in updater.cr_objects_of(some_object):
            assert some_object in updater.referencing(cr)
