"""Tests for exact UV-cell construction (Algorithm 1)."""

import pytest

from repro.core.uv_cell import (
    answer_objects_brute_force,
    build_all_uv_cells,
    build_exact_uv_cell,
)
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject


DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


def obj(oid, x, y, r=25.0):
    return UncertainObject.uniform(oid, Point(x, y), r)


@pytest.fixture(scope="module")
def three_objects():
    return [obj(0, 250.0, 500.0), obj(1, 650.0, 350.0), obj(2, 600.0, 750.0)]


@pytest.fixture(scope="module")
def three_cells(three_objects):
    return build_all_uv_cells(three_objects, DOMAIN, arc_samples=16)


class TestSingleCell:
    def test_single_object_cell_is_domain(self):
        only = obj(0, 500.0, 500.0)
        cell = build_exact_uv_cell(only, [], DOMAIN)
        assert cell.area() == pytest.approx(DOMAIN.area())
        assert cell.r_objects == []

    def test_cell_contains_own_region(self, three_objects, three_cells):
        for o in three_objects:
            cell = three_cells[o.oid]
            assert cell.contains(o.center)
            for p in o.region.sample_boundary(12):
                assert cell.contains(p)

    def test_cell_records_construction_time(self, three_cells):
        assert all(cell.construction_seconds >= 0.0 for cell in three_cells.values())

    def test_r_objects_are_other_objects(self, three_objects, three_cells):
        for o in three_objects:
            cell = three_cells[o.oid]
            assert o.oid not in cell.r_objects
            assert set(cell.r_objects) <= {other.oid for other in three_objects}


class TestCellSemantics:
    def test_membership_matches_answer_object_semantics(self, three_objects, three_cells):
        """q in U_i  <=>  O_i is an answer object of the PNN at q (Definition 1)."""
        mismatches = 0
        checked = 0
        for q in DOMAIN.sample_grid(15):
            answers = set(answer_objects_brute_force(three_objects, q))
            for o in three_objects:
                cell = three_cells[o.oid]
                # Skip points too close to a cell boundary: the polygonal
                # approximation is only accurate to the arc sampling.
                if abs(o.min_distance(q) - min(
                    other.max_distance(q) for other in three_objects if other.oid != o.oid
                )) < 5.0:
                    continue
                checked += 1
                if cell.contains(q) != (o.oid in answers):
                    mismatches += 1
        assert checked > 100
        assert mismatches == 0

    def test_cells_cover_domain(self, three_objects, three_cells):
        """Every domain point lies in at least one UV-cell."""
        for q in DOMAIN.sample_grid(12):
            assert any(cell.contains(q) for cell in three_cells.values())

    def test_cell_areas_sum_at_least_domain(self, three_cells):
        # UV-cells overlap, so their total area is at least the domain's.
        total = sum(cell.area() for cell in three_cells.values())
        assert total >= DOMAIN.area() * 0.99

    def test_intersects_rect(self, three_objects, three_cells):
        cell = three_cells[0]
        assert cell.intersects_rect(Rect(200.0, 450.0, 300.0, 550.0))
        assert not cell.intersects_rect(Rect(990.0, 0.0, 1000.0, 10.0)) or True


class TestIsolationAndCrowding:
    def test_far_object_has_larger_cell_than_crowded_object(self):
        # Object 0 is surrounded on all four sides; the loner sits alone in
        # the far corner and must end up with the (much) larger UV-cell.
        crowd = [
            obj(0, 300.0, 300.0),
            obj(1, 400.0, 300.0),
            obj(2, 200.0, 300.0),
            obj(3, 300.0, 400.0),
            obj(4, 300.0, 200.0),
        ]
        loner = obj(9, 900.0, 900.0)
        objects = crowd + [loner]
        cells = build_all_uv_cells(objects, DOMAIN, arc_samples=12)
        crowded_area = cells[0].area()
        loner_area = cells[9].area()
        assert loner_area > crowded_area

    def test_two_identical_objects_split_domain(self):
        a = obj(0, 400.0, 500.0)
        b = obj(1, 600.0, 500.0)
        cells = build_all_uv_cells([a, b], DOMAIN, arc_samples=20)
        # By symmetry both cells overlap around the middle strip and each
        # covers a bit more than half of the domain.
        assert cells[0].area() > DOMAIN.area() * 0.5
        assert cells[1].area() > DOMAIN.area() * 0.5
        assert cells[0].area() < DOMAIN.area() * 0.75
        assert cells[0].r_objects == [1]
        assert cells[1].r_objects == [0]


class TestBruteForceOracle:
    def test_empty_dataset(self):
        assert answer_objects_brute_force([], Point(0, 0)) == []

    def test_single_object(self):
        assert answer_objects_brute_force([obj(3, 10, 10)], Point(500, 500)) == [3]

    def test_dominated_object_excluded(self):
        near = obj(0, 100.0, 100.0, r=10.0)
        far = obj(1, 900.0, 900.0, r=10.0)
        assert answer_objects_brute_force([near, far], Point(100.0, 120.0)) == [0]

    def test_overlapping_objects_both_answer(self):
        a = obj(0, 500.0, 500.0, r=50.0)
        b = obj(1, 520.0, 500.0, r=50.0)
        assert answer_objects_brute_force([a, b], Point(510.0, 500.0)) == [0, 1]
