"""Tests for UV-edges and their outside regions."""

import pytest

from repro.core.uv_edge import UVEdge
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject


def objects_pair(gap=100.0, r_i=10.0, r_j=20.0):
    o_i = UncertainObject.uniform(1, Point(0.0, 0.0), r_i)
    o_j = UncertainObject.uniform(2, Point(gap, 0.0), r_j)
    return o_i, o_j


class TestConstruction:
    def test_requires_distinct_objects(self):
        o_i, _ = objects_pair()
        with pytest.raises(ValueError):
            UVEdge.between(o_i, o_i)

    def test_exists_for_disjoint_regions(self):
        edge = UVEdge.between(*objects_pair())
        assert edge.exists()

    def test_void_for_overlapping_regions(self):
        edge = UVEdge.between(*objects_pair(gap=25.0, r_i=15.0, r_j=15.0))
        assert not edge.exists()
        # A void edge never excludes anything.
        assert not edge.in_outside_region(Point(24.0, 0.0))
        assert edge.edge_value(Point(24.0, 0.0)) < 0
        assert edge.arc_between(Point(0, 0), Point(1, 1)) == []
        assert not edge.rect_in_outside_region(Rect(0, 0, 10, 10))


class TestOutsideRegionSemantics:
    def test_points_near_competitor_excluded(self):
        o_i, o_j = objects_pair()
        edge = UVEdge.between(o_i, o_j)
        q = Point(100.0, 0.0)  # at O_j's centre
        assert edge.in_outside_region(q)
        # Symmetric check against raw distances.
        assert o_i.min_distance(q) > o_j.max_distance(q)

    def test_points_near_owner_included(self):
        o_i, o_j = objects_pair()
        edge = UVEdge.between(o_i, o_j)
        q = Point(5.0, 5.0)
        assert not edge.in_outside_region(q)
        assert o_i.min_distance(q) <= o_j.max_distance(q)

    def test_edge_value_zero_on_the_edge(self):
        o_i, o_j = objects_pair()
        edge = UVEdge.between(o_i, o_j)
        assert edge.hyperbola is not None
        for t in (-1.0, 0.0, 1.0):
            assert edge.edge_value(edge.hyperbola.point_at(t)) == pytest.approx(0.0, abs=1e-9)

    def test_membership_equivalence_with_distance_inequality(self):
        o_i, o_j = objects_pair(gap=80.0, r_i=5.0, r_j=12.0)
        edge = UVEdge.between(o_i, o_j)
        probes = [
            Point(x, y)
            for x in (-50.0, 0.0, 30.0, 60.0, 90.0, 130.0)
            for y in (-40.0, 0.0, 25.0, 70.0)
        ]
        for p in probes:
            geometric = edge.in_outside_region(p)
            distances = o_j.max_distance(p) < o_i.min_distance(p)
            assert geometric == distances


class TestFourPointTest:
    def test_rect_deep_in_outside_region(self):
        o_i, o_j = objects_pair()
        edge = UVEdge.between(o_i, o_j)
        rect = Rect(95.0, -5.0, 105.0, 5.0)  # around O_j
        assert edge.rect_in_outside_region(rect)

    def test_rect_on_owner_side(self):
        o_i, o_j = objects_pair()
        edge = UVEdge.between(o_i, o_j)
        rect = Rect(-5.0, -5.0, 5.0, 5.0)
        assert not edge.rect_in_outside_region(rect)

    def test_rect_straddling_edge(self):
        o_i, o_j = objects_pair()
        edge = UVEdge.between(o_i, o_j)
        # A huge rectangle covering both objects cannot be fully outside.
        rect = Rect(-50.0, -50.0, 150.0, 50.0)
        assert not edge.rect_in_outside_region(rect)

    def test_conservativeness_of_four_point_test(self):
        """If the 4-point test says "fully outside", every sampled interior
        point really is in the outside region (Lemma 4 direction)."""
        o_i, o_j = objects_pair(gap=60.0, r_i=8.0, r_j=8.0)
        edge = UVEdge.between(o_i, o_j)
        rect = Rect(55.0, -10.0, 80.0, 10.0)
        if edge.rect_in_outside_region(rect):
            for p in rect.sample_grid(6):
                assert edge.in_outside_region(p, tol=-1e-9)
