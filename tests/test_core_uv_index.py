"""Tests for the adaptive UV-index (Algorithms 3-5)."""

import numpy as np
import pytest

from repro.core.cr_objects import CRObjectFinder
from repro.core.uv_index import UVIndex
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject


DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


def make_objects(count, seed=0, radius=25.0):
    rng = np.random.default_rng(seed)
    return [
        UncertainObject.uniform(
            i,
            Point(float(rng.uniform(radius, 1000.0 - radius)),
                  float(rng.uniform(radius, 1000.0 - radius))),
            radius,
        )
        for i in range(count)
    ]


def build_index(objects, **kwargs):
    finder = CRObjectFinder(objects, DOMAIN, seed_knn=min(30, len(objects)))
    by_id = {o.oid: o for o in objects}
    index = UVIndex(DOMAIN, **kwargs)
    for o in objects:
        result = finder.find(o)
        index.insert(o, [by_id[oid] for oid in result.cr_objects])
    return index


class TestParameters:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            UVIndex(DOMAIN, split_threshold=1.5)
        with pytest.raises(ValueError):
            UVIndex(DOMAIN, max_nonleaf=0)

    def test_empty_index_is_single_leaf(self):
        index = UVIndex(DOMAIN)
        assert index.root.is_leaf
        assert index.size == 0
        leaf, entries, io = index.point_query(Point(500.0, 500.0))
        assert leaf is index.root
        assert entries == []
        assert io.page_reads == 0


class TestInsertion:
    def test_every_object_indexed_somewhere(self):
        objects = make_objects(40, seed=1)
        index = build_index(objects, page_capacity=4)
        indexed = set()
        for leaf in index.leaves():
            indexed.update(leaf.entry_oids)
        assert indexed == {o.oid for o in objects}
        assert index.size == len(objects)

    def test_small_page_capacity_forces_splits(self):
        objects = make_objects(40, seed=2)
        index = build_index(objects, page_capacity=4)
        assert index.nonleaf_count > 1
        assert len(list(index.leaves())) > 4

    def test_huge_page_capacity_avoids_splits(self):
        objects = make_objects(40, seed=2)
        index = build_index(objects, page_capacity=1000)
        assert index.nonleaf_count == 1
        assert index.root.is_leaf

    def test_max_nonleaf_limits_splitting(self):
        objects = make_objects(60, seed=3)
        limited = build_index(objects, page_capacity=4, max_nonleaf=3)
        unlimited = build_index(objects, page_capacity=4, max_nonleaf=4000)
        assert limited.nonleaf_count <= 3
        assert unlimited.nonleaf_count > limited.nonleaf_count

    def test_split_threshold_zero_never_splits(self):
        objects = make_objects(50, seed=4)
        index = build_index(objects, page_capacity=4, split_threshold=0.0)
        # theta < 0 is impossible, so the index degrades into page chains.
        assert index.nonleaf_count == 1
        assert len(index.root.page_ids) > 1

    def test_quadrants_partition_regions(self):
        objects = make_objects(60, seed=5)
        index = build_index(objects, page_capacity=4)
        for leaf_a in index.leaves():
            for leaf_b in index.leaves():
                if leaf_a is leaf_b:
                    continue
                assert leaf_a.region.overlap_area(leaf_b.region) == pytest.approx(0.0)

    def test_leaf_regions_tile_domain(self):
        objects = make_objects(60, seed=6)
        index = build_index(objects, page_capacity=4)
        total = sum(leaf.region.area() for leaf in index.leaves())
        assert total == pytest.approx(DOMAIN.area())


class TestCheckOverlap:
    def test_overlap_true_for_region_containing_owner(self):
        objects = make_objects(20, seed=7)
        index = build_index(objects, page_capacity=8)
        owner = objects[0]
        region = Rect.from_center(owner.center, 50.0, 50.0)
        assert index.check_overlap(owner.oid, region)

    def test_overlap_false_only_when_truly_disjoint(self):
        """Conservativeness: when the 4-point test excludes a region, the
        brute-force answer-object semantics also excludes the object
        everywhere in that region."""
        from repro.core.uv_cell import answer_objects_brute_force

        objects = make_objects(25, seed=8)
        index = build_index(objects, page_capacity=8)
        probe_regions = [
            Rect.from_center(Point(x, y), 40.0, 40.0)
            for x in (100.0, 400.0, 700.0, 950.0)
            for y in (100.0, 500.0, 900.0)
            if DOMAIN.contains_rect(Rect.from_center(Point(x, y), 40.0, 40.0))
        ]
        for obj in objects[:6]:
            for region in probe_regions:
                if not index.check_overlap(obj.oid, region):
                    for p in region.sample_grid(4):
                        answers = answer_objects_brute_force(objects, p)
                        assert obj.oid not in answers


class TestPointQuery:
    def test_point_query_returns_covering_leaf(self):
        objects = make_objects(50, seed=9)
        index = build_index(objects, page_capacity=4)
        rng = np.random.default_rng(1)
        for _ in range(10):
            q = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            leaf, entries, io = index.point_query(q)
            assert leaf.region.contains_point(q)
            assert io.page_reads == len(leaf.page_ids)
            assert {e.oid for e in entries} == set(leaf.entry_oids)

    def test_query_outside_domain_rejected(self):
        index = UVIndex(DOMAIN)
        with pytest.raises(ValueError):
            index.point_query(Point(-10.0, 50.0))

    def test_leaf_entries_contain_all_answer_objects(self):
        """Correctness guarantee of the index: the leaf covering q lists
        every object with non-zero qualification probability at q."""
        from repro.core.uv_cell import answer_objects_brute_force

        objects = make_objects(60, seed=10, radius=40.0)
        index = build_index(objects, page_capacity=4)
        rng = np.random.default_rng(2)
        for _ in range(20):
            q = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            _, entries, _ = index.point_query(q)
            listed = {e.oid for e in entries}
            answers = set(answer_objects_brute_force(objects, q))
            assert answers <= listed


class TestTraversalHelpers:
    def test_leaves_in_range(self):
        objects = make_objects(50, seed=11)
        index = build_index(objects, page_capacity=4)
        window = Rect(0.0, 0.0, 300.0, 300.0)
        inside = index.leaves_in(window)
        assert inside
        for leaf in inside:
            assert leaf.region.intersects(window)
        all_leaves = list(index.leaves())
        assert len(inside) < len(all_leaves)

    def test_leaves_of_object(self):
        objects = make_objects(30, seed=12)
        index = build_index(objects, page_capacity=4)
        leaves = index.leaves_of_object(objects[0].oid)
        assert leaves
        for leaf in leaves:
            assert objects[0].oid in leaf.entry_oids

    def test_statistics_shape(self):
        objects = make_objects(30, seed=13)
        index = build_index(objects, page_capacity=4)
        stats = index.statistics()
        assert stats["objects"] == 30.0
        assert stats["leaf_nodes"] >= 1.0
        assert stats["total_entries"] >= 30.0
        assert stats["avg_entries_per_leaf"] > 0.0
