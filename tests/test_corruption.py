"""Single-byte corruption sweeps: damage is detected, never silently wrong.

The property under test is the robustness contract of PR 9: flip *any* one
byte of a saved snapshot or WAL record and the system either behaves
bit-identically (the flip landed somewhere semantically inert, e.g. header
padding) or raises a structured error (:class:`CorruptSnapshotError` /
:class:`CorruptRecordError` / :class:`PageStoreError`) -- under
``verify=True`` a snapshot flip is *always* caught, because verification is
a whole-file checksum.

Every sweep flips in place and restores afterwards (XOR is self-inverse),
so one saved artifact serves hundreds of hypothesis examples.
"""

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiagramConfig, QueryEngine, generate_query_points, generate_uniform_objects
from repro.faults import corrupt_wal_record, flip_byte, wal_record_offsets
from repro.queries.spec import PNNQuery
from repro.storage.pagestore import CorruptSnapshotError, PageStoreError, verify_snapshot_file
from repro.wal import CorruptRecordError, WriteAheadLog, scan_wal
from repro.wal.drill import synthesize_object

CONFIG = DiagramConfig(page_capacity=16, seed_knn=40, rtree_fanout=16,
                       grid_resolution=8)
BACKENDS = ("ic", "icr", "basic", "rtree", "grid")

SWEEP = settings(derandomize=True, deadline=None, max_examples=40)


def _build(backend, count=48, seed=4):
    if backend == "basic":  # exponential worst case; keep its input tiny
        count = 12
    objects, domain = generate_uniform_objects(count, seed=seed, diameter=300.0)
    engine = QueryEngine.build(objects, domain, CONFIG.replace(backend=backend))
    return engine, domain


def _answers(engine, domain, seed=17):
    results = []
    for point in generate_query_points(4, domain, seed=seed):
        result = engine.execute(PNNQuery(point))
        results.append((result.answer_ids, result.probabilities))
    return results


@pytest.fixture(scope="module")
def snapshots(tmp_path_factory):
    """One saved snapshot (path, domain, baseline answers) per backend."""
    root = tmp_path_factory.mktemp("corruption")
    built = {}
    for backend in BACKENDS:
        engine, domain = _build(backend)
        path = str(root / f"{backend}.snap")
        engine.save(path)
        built[backend] = (path, domain, _answers(engine, domain))
    return built


class TestSnapshotByteFlips:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(offset_seed=st.integers(min_value=0, max_value=2**32 - 1),
           mask=st.integers(min_value=1, max_value=255))
    @SWEEP
    def test_verified_open_always_detects_a_flip(
        self, snapshots, backend, offset_seed, mask
    ):
        path, _, _ = snapshots[backend]
        size = os.path.getsize(path)
        offset = random.Random(offset_seed).randrange(size)
        flip_byte(path, offset=offset, mask=mask)
        try:
            # Any single flipped bit fails the whole-file checksum; a flip
            # in the version field may instead surface as an unsupported
            # format -- structured either way, never a silent open.
            with pytest.raises(PageStoreError):
                verify_snapshot_file(path)
        finally:
            flip_byte(path, offset=offset, mask=mask)
        verify_snapshot_file(path)  # the restore really restored it

    @given(offset_seed=st.integers(min_value=0, max_value=2**32 - 1),
           mask=st.integers(min_value=1, max_value=255))
    @SWEEP
    def test_unverified_open_is_bit_identical_or_structured(
        self, snapshots, offset_seed, mask
    ):
        """Without up-front verification the lazy CRCs still keep the
        invariant: correct answers or a structured error, never wrong ones."""
        path, domain, baseline = snapshots["ic"]
        size = os.path.getsize(path)
        offset = random.Random(offset_seed).randrange(size)
        flip_byte(path, offset=offset, mask=mask)
        try:
            try:
                engine = QueryEngine.open(path)
                answers = _answers(engine, domain)
            except (PageStoreError, KeyError, ValueError):
                return  # structured refusal at open or first touched page
            assert answers == baseline, (
                f"flip at byte {offset} (mask {mask:#x}) silently changed "
                f"query answers"
            )
        finally:
            flip_byte(path, offset=offset, mask=mask)


class TestWalRecordFlips:
    @pytest.fixture(scope="class")
    def deployment(self, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("waldir") / "live")
        engine, _ = _build("ic")
        engine.save_generation(directory)
        live = QueryEngine.open_live(directory)
        rng = random.Random(9)
        base = max(live.by_id) + 1000
        for index in range(6):
            live.insert(synthesize_object(base + index, rng, live.domain))
        live.close_wal()
        wal_file = os.path.join(directory, "wal.log")
        scan = scan_wal(wal_file)
        return wal_file, [record.lsn for record in scan.records]

    @given(record_index=st.integers(min_value=0, max_value=5),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           mask=st.integers(min_value=1, max_value=255))
    @SWEEP
    def test_flip_truncates_tail_or_refuses_replay(
        self, deployment, record_index, seed, mask
    ):
        """A flipped record byte yields a bit-identical prefix (torn tail,
        when the damage is in the *last* record) or a refusal to replay
        (mid-log corruption) -- never a silently altered record."""
        wal_file, lsns = deployment
        offset = corrupt_wal_record(wal_file, record_index, seed=seed, mask=mask)
        try:
            scan = scan_wal(wal_file)
            damaged_lsns = [record.lsn for record in scan.records]
            # Every surviving record is from the undamaged prefix.
            assert damaged_lsns == lsns[:record_index], (
                f"flip at byte {offset} of record {record_index} left "
                f"records {damaged_lsns}, expected prefix {lsns[:record_index]}"
            )
            if record_index < len(lsns) - 1:
                # Intact records exist past the break: recovery must refuse
                # to truncate acknowledged history.
                assert scan.is_corrupt
                with pytest.raises(CorruptRecordError):
                    WriteAheadLog(wal_file)
            else:
                # Damage in the last record is indistinguishable from a
                # torn append; a truncating open is the correct recovery.
                assert not scan.is_corrupt
        finally:
            flip_byte(wal_file, offset=offset, mask=mask)
        assert [record.lsn for record in scan_wal(wal_file).records] == lsns

    def test_offsets_cover_every_record(self, deployment):
        wal_file, lsns = deployment
        assert len(wal_record_offsets(wal_file)) == len(lsns)
