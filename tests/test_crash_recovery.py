"""Crash-recovery drills: kill -9 an acknowledged update stream, reopen.

The durability contract under test (see ``docs/durability.md``): an update is
*acknowledged* only after its WAL append returned, so after a hard kill

* every acknowledged LSN is still readable from the log (zero lost
  acknowledged updates), and
* the recovered engine answers queries bit-identically to a reference engine
  built by applying the same durable records to a pristine copy of the
  deployment (what an uninterrupted run of exactly those updates would hold).

The child process is ``python -m repro.wal.drill``, which prints one
``ACK <lsn> <op> <oid>`` line per durable update; the parent reads a few
acknowledgements and then delivers SIGKILL mid-stream.
"""

import os
import shutil
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import DiagramConfig, Point, QueryEngine
from repro.engine.snapshot import initialize_generation, read_manifest, wal_path
from repro.queries.spec import PNNQuery
from repro.wal import read_records, replay, scan_wal

BACKENDS = ("ic", "icr", "basic", "rtree", "grid")

#: Updates the child is asked for vs. acknowledgements we wait for before
#: killing it -- the kill always lands mid-stream.
STREAM_UPDATES = 60
ACKS_BEFORE_KILL = 12


def _deployment(tmp_path, small_objects, small_domain, backend):
    engine = QueryEngine.build(
        small_objects, small_domain, DiagramConfig(backend=backend)
    )
    directory = str(tmp_path / f"dep-{backend}")
    initialize_generation(engine, directory)
    return directory


def _run_drill_and_kill(directory, acks_before_kill=ACKS_BEFORE_KILL, seed=7):
    """Start the drill, read some ACK lines, SIGKILL it. Returns acked LSNs."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.wal.drill",
            "--dir", directory,
            "--updates", str(STREAM_UPDATES),
            "--seed", str(seed),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    acked = []
    try:
        assert proc.stdout is not None
        for line in proc.stdout:
            parts = line.split()
            if parts and parts[0] == "ACK":
                acked.append(int(parts[1]))
            if len(acked) >= acks_before_kill:
                break
        assert len(acked) >= acks_before_kill, (
            f"drill exited early: {proc.stderr.read() if proc.stderr else ''}"
        )
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.kill()
        proc.wait(timeout=30)
        if proc.stdout is not None:
            proc.stdout.close()
        if proc.stderr is not None:
            proc.stderr.close()
    return acked


def _query_points(domain):
    cx = (domain.xmin + domain.xmax) / 2.0
    cy = (domain.ymin + domain.ymax) / 2.0
    w = domain.xmax - domain.xmin
    h = domain.ymax - domain.ymin
    return [
        Point(cx, cy),
        Point(domain.xmin + 0.25 * w, domain.ymin + 0.25 * h),
        Point(domain.xmin + 0.75 * w, domain.ymin + 0.25 * h),
        Point(domain.xmin + 0.25 * w, domain.ymin + 0.75 * h),
        Point(domain.xmin + 0.75 * w, domain.ymin + 0.75 * h),
    ]


@pytest.mark.parametrize("backend", BACKENDS)
class TestKillNineDrill:
    def test_no_acknowledged_update_is_lost(
        self, tmp_path, small_objects, small_domain, backend
    ):
        directory = _deployment(tmp_path, small_objects, small_domain, backend)
        pristine = str(tmp_path / f"pristine-{backend}")
        shutil.copytree(directory, pristine)

        acked = _run_drill_and_kill(directory)

        # Zero lost acknowledged updates: every acked LSN is in the log.
        scan = scan_wal(wal_path(directory))
        durable = {record.lsn for record in scan.records}
        missing = [lsn for lsn in acked if lsn not in durable]
        assert not missing, (
            f"[{backend}] acknowledged LSNs lost after kill -9: {missing} "
            f"(torn_reason={scan.torn_reason!r})"
        )

        # Reopening replays the durable tail onto the snapshot.
        recovered = QueryEngine.open_live(directory)
        try:
            assert recovered.last_lsn == scan.last_lsn
            assert recovered.last_lsn >= max(acked)

            # Reference: apply the same durable records to a pristine copy --
            # the state an uninterrupted run of those updates would have.
            base_lsn = read_manifest(pristine).base_lsn
            reference = QueryEngine.open_live(pristine)
            try:
                records = read_records(
                    wal_path(directory), after_lsn=base_lsn
                ).records
                replay(reference, records, after_lsn=base_lsn)

                assert sorted(recovered.by_id) == sorted(reference.by_id)
                for q in _query_points(small_domain):
                    got = recovered.execute(PNNQuery(q))
                    want = reference.execute(PNNQuery(q))
                    assert [a.oid for a in got.answers] == [
                        a.oid for a in want.answers
                    ]
                    # Bit-identical probabilities, not approx: replay feeds
                    # the same IEEE-754 doubles through the same kernel.
                    assert [a.probability for a in got.answers] == [
                        a.probability for a in want.answers
                    ]
            finally:
                reference.close_wal()
        finally:
            recovered.close_wal()

    def test_recovered_deployment_checkpoints_cleanly(
        self, tmp_path, small_objects, small_domain, backend
    ):
        from repro.wal.checkpoint import Checkpointer

        directory = _deployment(tmp_path, small_objects, small_domain, backend)
        _run_drill_and_kill(directory, acks_before_kill=6)

        engine = QueryEngine.open_live(directory)
        try:
            assert engine.pending_wal_records > 0
            result = Checkpointer(engine).run_once()
            assert result is not None
            assert result.generation == 2
            assert engine.pending_wal_records == 0
        finally:
            engine.close_wal()

        # The torn tail is gone: the new generation reopens with no pending
        # records and the same object set.
        reopened = QueryEngine.open_live(directory)
        try:
            assert reopened.generation == 2
            assert not reopened.dirty
            assert sorted(reopened.by_id) == sorted(engine.by_id)
        finally:
            reopened.close_wal()
