"""Tests for the dataset generators and the loader."""

import numpy as np
import pytest

from repro.datasets.loader import load_dataset
from repro.datasets.real_like import (
    generate_roads_like,
    generate_rrlines_like,
    generate_utility_like,
    real_like_dataset,
)
from repro.datasets.synthetic import (
    DEFAULT_DOMAIN,
    generate_query_points,
    generate_skewed_objects,
    generate_uniform_objects,
)
from repro.geometry.rectangle import Rect
from repro.uncertain.pdf import HistogramPdf, TruncatedGaussianPdf, UniformPdf


def centres_std(objects):
    xs = np.array([o.center.x for o in objects])
    ys = np.array([o.center.y for o in objects])
    return float(np.std(xs)), float(np.std(ys))


class TestUniformGenerator:
    def test_counts_ids_and_domain(self):
        objects, domain = generate_uniform_objects(50, seed=1)
        assert len(objects) == 50
        assert [o.oid for o in objects] == list(range(50))
        assert domain == DEFAULT_DOMAIN

    def test_objects_inside_domain(self):
        objects, domain = generate_uniform_objects(100, seed=2, diameter=100.0)
        for o in objects:
            assert domain.contains_rect(o.mbr())
            assert o.radius == pytest.approx(50.0)

    def test_reproducibility(self):
        a, _ = generate_uniform_objects(20, seed=5)
        b, _ = generate_uniform_objects(20, seed=5)
        assert all(p.center == q.center for p, q in zip(a, b))
        c, _ = generate_uniform_objects(20, seed=6)
        assert any(p.center != q.center for p, q in zip(a, c))

    def test_pdf_kinds(self):
        hist, _ = generate_uniform_objects(3, seed=1, pdf="histogram")
        gauss, _ = generate_uniform_objects(3, seed=1, pdf="gaussian")
        unif, _ = generate_uniform_objects(3, seed=1, pdf="uniform")
        assert isinstance(hist[0].pdf, HistogramPdf)
        assert hist[0].pdf.bars == 20
        assert isinstance(gauss[0].pdf, TruncatedGaussianPdf)
        assert isinstance(unif[0].pdf, UniformPdf)
        with pytest.raises(ValueError):
            generate_uniform_objects(3, pdf="bogus")

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_uniform_objects(0)


class TestSkewedGenerator:
    def test_smaller_sigma_is_more_concentrated(self):
        tight, _ = generate_skewed_objects(300, sigma=500.0, seed=3)
        loose, _ = generate_skewed_objects(300, sigma=3000.0, seed=3)
        tight_std = sum(centres_std(tight)) / 2.0
        loose_std = sum(centres_std(loose)) / 2.0
        assert tight_std < loose_std

    def test_objects_clamped_to_domain(self):
        objects, domain = generate_skewed_objects(200, sigma=6000.0, seed=4)
        for o in objects:
            assert domain.contains_rect(o.mbr())

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_skewed_objects(10, sigma=0.0)
        with pytest.raises(ValueError):
            generate_skewed_objects(0, sigma=100.0)


class TestRealLikeGenerators:
    def test_all_families_generate_requested_count(self):
        for generator in (generate_utility_like, generate_roads_like, generate_rrlines_like):
            objects, domain = generator(120, seed=7)
            assert len(objects) == 120
            for o in objects:
                assert domain.contains_rect(o.mbr())

    def test_utility_is_more_clustered_than_uniform(self):
        clustered, _ = generate_utility_like(400, seed=8, clusters=6)
        uniform, _ = generate_uniform_objects(400, seed=8)
        # Clustering shows up as a much smaller average nearest-neighbour
        # distance between centres.
        def mean_nn_distance(objects):
            pts = np.array([[o.center.x, o.center.y] for o in objects])
            from scipy.spatial import cKDTree

            tree = cKDTree(pts)
            distances, _ = tree.query(pts, k=2)
            return float(np.mean(distances[:, 1]))

        assert mean_nn_distance(clustered) < mean_nn_distance(uniform) * 0.7

    def test_dispatch_by_name(self):
        objects, _ = real_like_dataset("roads", 50, seed=1)
        assert len(objects) == 50
        with pytest.raises(ValueError):
            real_like_dataset("mountains", 50)


class TestQueryPointsAndLoader:
    def test_query_points_inside_domain(self):
        domain = Rect(0.0, 0.0, 500.0, 500.0)
        queries = generate_query_points(30, domain, seed=2)
        assert len(queries) == 30
        assert all(domain.contains_point(q) for q in queries)
        with pytest.raises(ValueError):
            generate_query_points(0)

    def test_load_dataset_bundles(self):
        bundle = load_dataset("uniform", 40, query_count=10, seed=3)
        assert bundle.size == 40
        assert len(bundle.queries) == 10
        assert bundle.name == "uniform"

    def test_load_dataset_skewed_requires_sigma(self):
        with pytest.raises(ValueError):
            load_dataset("skewed", 10)
        bundle = load_dataset("skewed", 10, sigma=1000.0)
        assert bundle.size == 10

    def test_load_dataset_real_like_and_unknown(self):
        bundle = load_dataset("utility", 25)
        assert bundle.size == 25
        with pytest.raises(ValueError):
            load_dataset("unknown", 10)
