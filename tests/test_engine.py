"""Tests for the unified query-engine API: config, registry, engine, batch,
live updates, and the backward-compatibility shims."""

import numpy as np
import pytest

from repro import (
    DiagramConfig,
    Point,
    QueryEngine,
    Rect,
    UncertainObject,
    UnsupportedQueryError,
    UVDiagram,
    available_backends,
    register_backend,
)
from repro.core.uv_cell import answer_objects_brute_force
from repro.engine.backend import BatchReadCache, create_backend, unregister_backend
from repro.engine.backends import UniformGridBackend, UVIndexBackend


DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


def make_objects(count, seed=0, radius=30.0):
    rng = np.random.default_rng(seed)
    return [
        UncertainObject.uniform(
            i,
            Point(float(rng.uniform(radius, 1000.0 - radius)),
                  float(rng.uniform(radius, 1000.0 - radius))),
            radius,
        )
        for i in range(count)
    ]


SMALL_CONFIG = DiagramConfig(page_capacity=8, seed_knn=20, rtree_fanout=8,
                             grid_resolution=8)


@pytest.fixture(scope="module")
def dataset():
    return make_objects(60, seed=7)


@pytest.fixture(scope="module")
def engines(dataset):
    """One engine per built-in backend family over the same dataset."""
    return {
        name: QueryEngine.build(dataset, DOMAIN, SMALL_CONFIG.replace(backend=name))
        for name in ("ic", "rtree", "grid")
    }


def queries(seed=3, count=10):
    rng = np.random.default_rng(seed)
    return [
        Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
        for _ in range(count)
    ]


class TestDiagramConfig:
    def test_defaults_are_valid(self):
        config = DiagramConfig()
        assert config.backend == "ic"
        assert config.split_threshold == 1.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("backend", ""),
            ("max_nonleaf", 0),
            ("split_threshold", 1.5),
            ("split_threshold", -0.1),
            ("page_capacity", 0),
            ("seed_knn", 0),
            ("seed_sectors", 0),
            ("rtree_fanout", 2),
            ("grid_resolution", 0),
        ],
    )
    def test_validation_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            DiagramConfig(**{field: value})

    def test_dict_round_trip(self):
        config = DiagramConfig(backend="grid", page_capacity=8, grid_resolution=4)
        data = config.to_dict()
        assert data["backend"] == "grid"
        assert DiagramConfig.from_dict(data) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown DiagramConfig keys"):
            DiagramConfig.from_dict({"backend": "ic", "fanout": 4})

    def test_replace_revalidates(self):
        config = DiagramConfig()
        assert config.replace(backend="grid").backend == "grid"
        with pytest.raises(ValueError):
            config.replace(split_threshold=7.0)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        for expected in ("ic", "icr", "basic", "rtree", "grid"):
            assert expected in names

    def test_unknown_backend_raises_with_available_names(self, dataset):
        with pytest.raises(ValueError, match="unknown backend.*grid"):
            QueryEngine.build(dataset, DOMAIN, SMALL_CONFIG.replace(backend="btree"))

    def test_custom_backend_registration_round_trip(self, dataset):
        def factory(objects, domain, config, disk, rtree, scheduler=None):
            backend = UVIndexBackend.__new__(UVIndexBackend)  # placeholder instance
            return backend

        register_backend("custom-test", factory)
        try:
            assert "custom-test" in available_backends()
            backend = create_backend(
                "custom-test", dataset, DOMAIN, SMALL_CONFIG, None, None
            )
            assert backend.name == "custom-test"
        finally:
            unregister_backend("custom-test")
        assert "custom-test" not in available_backends()

    def test_grid_adapter_round_trips_through_registry(self, engines, dataset):
        engine = engines["grid"]
        assert isinstance(engine.backend, UniformGridBackend)
        for q in queries(seed=5, count=6):
            got = sorted(engine.pnn(q, compute_probabilities=False).answer_ids)
            assert got == answer_objects_brute_force(dataset, q)


class TestQueryPlane:
    def test_pnn_parity_across_backends(self, engines, dataset):
        for q in queries():
            expected = answer_objects_brute_force(dataset, q)
            for name, engine in engines.items():
                got = sorted(engine.pnn(q, compute_probabilities=False).answer_ids)
                assert got == expected, name

    def test_knn_through_engine(self, engines):
        for engine in engines.values():
            result = engine.knn(Point(500.0, 500.0), k=3, worlds=500)
            assert result.answers
            assert result.expected_in_top_k() == pytest.approx(3.0, abs=0.1)

    def test_partitions_in_all_backends(self, engines):
        window = Rect(100.0, 100.0, 500.0, 500.0)
        for name, engine in engines.items():
            result = engine.partitions_in(window)
            assert result.partitions, name
            assert result.total_objects() > 0, name

    def test_uv_cell_queries_need_uv_backend(self, engines):
        oid = engines["ic"].objects[0].oid
        assert engines["ic"].uv_cell_area(oid) > 0.0
        with pytest.raises(UnsupportedQueryError):
            engines["grid"].uv_cell_area(oid)
        with pytest.raises(UnsupportedQueryError):
            engines["rtree"].uv_cell_extent(oid)

    def test_statistics_and_io_stats(self, engines):
        for engine in engines.values():
            stats = engine.statistics()
            assert stats["objects"] == float(len(engine))
            io = engine.io_stats()
            assert io.page_reads >= 0


class TestBatch:
    def test_batch_matches_sequential_pnn(self, engines):
        workload = queries(seed=9, count=12)
        for name, engine in engines.items():
            sequential = [engine.pnn(q) for q in workload]
            batch = engine.batch(workload)
            assert len(batch) == len(workload)
            for seq, got in zip(sequential, batch):
                assert got.answer_ids == seq.answer_ids, name
                for a, b in zip(seq.answers, got.answers):
                    assert b.probability == pytest.approx(a.probability)

    def test_clustered_batch_saves_page_reads(self, engines):
        """50 clustered queries: the shared leaf cache must beat 50
        sequential pnn() calls on the UV-index backend."""
        engine = engines["ic"]
        rng = np.random.default_rng(17)
        clustered = [
            Point(480.0 + float(rng.uniform(0, 60)), 480.0 + float(rng.uniform(0, 60)))
            for _ in range(50)
        ]
        before = engine.disk.stats.snapshot()
        for q in clustered:
            engine.pnn(q, compute_probabilities=False)
        sequential_reads = engine.disk.stats.delta(before).page_reads

        batch = engine.batch(clustered, compute_probabilities=False)
        assert batch.page_reads < sequential_reads
        assert batch.cache_hits > 0

    def test_cache_counts_hits_and_misses(self):
        cache = BatchReadCache()
        assert cache.get("a", lambda: 1) == 1
        assert cache.get("a", lambda: 2) == 1
        assert (cache.hits, cache.misses, len(cache)) == (1, 1, 1)


class TestLiveUpdates:
    @pytest.mark.parametrize("backend", ["ic", "rtree", "grid"])
    def test_insert_then_query(self, backend):
        objects = make_objects(30, seed=41)
        engine = QueryEngine.build(objects, DOMAIN, SMALL_CONFIG.replace(backend=backend))
        newcomer = UncertainObject.uniform(900, Point(512.0, 488.0), 40.0)
        engine.insert(newcomer)
        assert len(engine) == 31
        assert 900 in engine.pnn(newcomer.center, compute_probabilities=False).answer_ids
        for q in queries(seed=2, count=8):
            got = sorted(engine.pnn(q, compute_probabilities=False).answer_ids)
            assert got == answer_objects_brute_force(engine.objects, q)

    @pytest.mark.parametrize("backend", ["ic", "rtree", "grid"])
    def test_delete_then_query(self, backend):
        objects = make_objects(30, seed=42)
        engine = QueryEngine.build(objects, DOMAIN, SMALL_CONFIG.replace(backend=backend))
        target = engine.object(5)
        engine.delete(5)
        assert len(engine) == 29
        assert 5 not in engine.pnn(target.center, compute_probabilities=False).answer_ids
        for q in queries(seed=4, count=8):
            got = sorted(engine.pnn(q, compute_probabilities=False).answer_ids)
            assert got == answer_objects_brute_force(engine.objects, q)

    def test_grid_churn_does_not_grow_pages(self):
        """Insert/delete churn must not leak grid pages (cells are repacked)."""
        objects = make_objects(30, seed=43)
        engine = QueryEngine.build(objects, DOMAIN, SMALL_CONFIG.replace(backend="grid"))
        grid = engine.backend.grid
        baseline_pages = sum(len(pages) for pages in grid._cell_pages.values())
        for round_number in range(20):
            obj = UncertainObject.uniform(
                1000 + round_number, Point(500.0, 500.0), 30.0
            )
            engine.insert(obj)
            engine.delete(obj.oid)
        assert sum(len(pages) for pages in grid._cell_pages.values()) == baseline_pages
        for q in queries(seed=6, count=6):
            got = sorted(engine.pnn(q, compute_probabilities=False).answer_ids)
            assert got == answer_objects_brute_force(engine.objects, q)

    def test_duplicate_insert_and_unknown_delete(self, engines):
        engine = engines["rtree"]
        with pytest.raises(ValueError):
            engine.insert(UncertainObject.uniform(0, Point(100.0, 100.0), 10.0))
        with pytest.raises(KeyError):
            engine.delete(987654)


class TestCompatibilityShims:
    def test_uvdiagram_build_warns_and_delegates(self, dataset):
        with pytest.warns(DeprecationWarning, match="UVDiagram.build"):
            diagram = UVDiagram.build(
                dataset, DOMAIN, page_capacity=8, seed_knn=20, rtree_fanout=8
            )
        assert isinstance(diagram.engine, QueryEngine)
        q = Point(321.0, 654.0)
        assert sorted(diagram.pnn(q, compute_probabilities=False).answer_ids) == (
            answer_objects_brute_force(dataset, q)
        )

    def test_pnn_rtree_warns_and_matches_baseline(self, dataset):
        with pytest.warns(DeprecationWarning):
            diagram = UVDiagram.build(
                dataset, DOMAIN, page_capacity=8, seed_knn=20, rtree_fanout=8
            )
        q = Point(700.0, 200.0)
        with pytest.warns(DeprecationWarning, match="pnn_rtree"):
            result = diagram.pnn_rtree(q, compute_probabilities=False)
        assert sorted(result.answer_ids) == answer_objects_brute_force(dataset, q)

    def test_uvdiagram_build_accepts_grid_backend(self, dataset):
        with pytest.warns(DeprecationWarning):
            diagram = UVDiagram.build(
                dataset, DOMAIN, method="grid", page_capacity=8, seed_knn=20,
                rtree_fanout=8
            )
        assert diagram.index is None
        q = Point(250.0, 250.0)
        assert sorted(diagram.pnn(q, compute_probabilities=False).answer_ids) == (
            answer_objects_brute_force(dataset, q)
        )
