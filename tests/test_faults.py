"""Tests for :mod:`repro.faults`: plans, the faulty store, and hardening.

Covers the deterministic fault-plan wire format, the fault-injecting page
store, the WAL append hooks, checkpoint retry/status recording, and the
corrupt-generation quarantine fallback -- the unit-level counterparts of
the ``repro chaos`` drill matrix.
"""

import json
import os
import random

import pytest

from repro import DiagramConfig, QueryEngine, generate_uniform_objects
from repro.engine.snapshot import (
    list_quarantined,
    quarantine_snapshot,
    read_manifest,
)
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    FaultyPageStore,
    flip_byte,
    injector_from_env,
    tear_file,
)
from repro.storage.disk import DiskManager
from repro.storage.page import Page
from repro.storage.pagestore import FilePageStore, MemoryPageStore
from repro.wal import (
    OP_DELETE,
    CorruptRecordError,
    WriteAheadLog,
    read_checkpoint_status,
    scan_wal,
)
from repro.wal.checkpoint import Checkpointer
from repro.wal.drill import synthesize_object
from repro.wal.log import encode_delete

CONFIG = DiagramConfig(backend="ic", page_capacity=16, seed_knn=40,
                       rtree_fanout=16)


def _build(count=30, seed=3):
    objects, domain = generate_uniform_objects(count, seed=seed, diameter=300.0)
    return QueryEngine.build(objects, domain, CONFIG), domain


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=7, faults=(
            FaultSpec("wal.append", 3, "torn_write"),
            FaultSpec("worker.request", 1, "hang", 2.5),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert json.loads(plan.to_json())["seed"] == 7

    def test_rejects_duplicate_schedule_keys(self):
        with pytest.raises(FaultPlanError, match="two faults"):
            FaultPlan(faults=(
                FaultSpec("store.flush", 1, "io_error"),
                FaultSpec("store.flush", 1, "latency", 0.1),
            ))

    def test_spec_validation(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec("store.flush", 1, "gremlins")
        with pytest.raises(FaultPlanError, match="1-based"):
            FaultSpec("store.flush", 0, "io_error")
        with pytest.raises(FaultPlanError, match=">= 0"):
            FaultSpec("store.flush", 1, "latency", -1.0)
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match="missing key"):
            FaultPlan.from_json('{"faults": [{"op": "x", "count": 1}]}')

    def test_injector_fires_exactly_on_schedule(self):
        plan = FaultPlan(faults=(FaultSpec("op.a", 2, "io_error"),))
        injector = plan.injector()
        assert injector.fire("op.a") is None
        assert injector.fire("op.b") is None
        spec = injector.fire("op.a")
        assert spec is not None and spec.kind == "io_error"
        assert injector.fire("op.a") is None
        assert injector.fired == [("op.a", 2, "io_error")]
        assert injector.calls("op.a") == 3

    def test_rng_is_deterministic_across_injectors(self):
        plan = FaultPlan(seed=99)
        first, second = plan.injector(), plan.injector()
        for injector in (first, second):
            injector.fire("store.store_page")
        assert (first.rng("store.store_page").random()
                == second.rng("store.store_page").random())
        # Different ops and different counts draw different streams.
        assert (first.rng("store.store_page").random()
                != first.rng("store.flush").random())

    def test_injector_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert injector_from_env() is None
        plan = FaultPlan(seed=3, faults=(FaultSpec("worker.request", 1, "crash"),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        injector = injector_from_env()
        assert isinstance(injector, FaultInjector)
        assert injector.plan == plan


class TestFaultyPageStore:
    def _page(self, page_id=0):
        page = Page(page_id, capacity=4)
        page.entries.append({"k": page_id})
        return page

    def test_io_error_and_latency(self):
        plan = FaultPlan(faults=(
            FaultSpec("store.load_page", 2, "io_error"),
            FaultSpec("store.store_page", 1, "latency", 0.0),
        ))
        store = FaultyPageStore(MemoryPageStore(), plan.injector())
        store.store_page(self._page())  # latency: delegated, then proceeds
        assert store.load_page(0).entries == [{"k": 0}]
        with pytest.raises(OSError, match="injected I/O error"):
            store.load_page(0)
        assert 0 in store and len(store) == 1

    def test_file_level_faults_need_a_backing_path(self):
        plan = FaultPlan(faults=(FaultSpec("store.store_page", 1, "bit_flip"),))
        store = FaultyPageStore(MemoryPageStore(), plan.injector())
        with pytest.raises(FaultPlanError, match="file-backed"):
            store.store_page(self._page())

    def test_invalid_kind_for_op_is_a_plan_error(self):
        plan = FaultPlan(faults=(FaultSpec("store.load_page", 1, "torn_write"),))
        store = FaultyPageStore(MemoryPageStore(), plan.injector())
        store.store_page(self._page())
        with pytest.raises(FaultPlanError, match="not valid"):
            store.load_page(0)

    def test_bit_flip_damages_the_backing_file(self, tmp_path):
        def run(name, faulty):
            path = str(tmp_path / name)
            inner = FilePageStore.create(path, slot_bytes=256)
            if faulty:
                plan = FaultPlan(
                    seed=0, faults=(FaultSpec("store.store_page", 2, "bit_flip"),)
                )
                store = FaultyPageStore(inner, plan.injector())
            else:
                store = inner
            store.store_page(self._page(0))
            store.store_page(self._page(1))  # delegated write + silent flip
            store.close()
            return open(path, "rb").read()

        damaged = run("damaged.pages", faulty=True)
        clean = run("clean.pages", faulty=False)
        assert run("again.pages", faulty=True) == damaged  # deterministic
        assert len(clean) == len(damaged)
        # Exactly one data byte flipped by one bit; close() reseals the
        # header, so the whole-file CRC there may legitimately differ too.
        from repro.storage.pagestore import HEADER_SIZE

        diffs = [(i, a ^ b) for i, (a, b) in enumerate(zip(clean, damaged))
                 if a != b and i >= HEADER_SIZE]
        assert diffs == [(233, 0x01)]

    def test_torn_write_shears_and_raises(self, tmp_path):
        path = str(tmp_path / "store.pages")
        inner = FilePageStore.create(path, slot_bytes=256)
        plan = FaultPlan(seed=5,
                         faults=(FaultSpec("store.store_page", 2, "torn_write"),))
        store = FaultyPageStore(inner, plan.injector())
        store.store_page(self._page(0))
        size_before = os.path.getsize(path)
        with pytest.raises(OSError, match="torn write"):
            store.store_page(self._page(1))
        assert os.path.getsize(path) < max(size_before, os.path.getsize(path) + 1)

    def test_counted_reads_flow_through_disk_manager(self):
        plan = FaultPlan(faults=(FaultSpec("store.load_page", 1, "io_error"),))
        disk = DiskManager(store=FaultyPageStore(MemoryPageStore(),
                                                 plan.injector()))
        page = disk.allocate_page()
        disk._cache.clear()  # force the read to reach the store
        with pytest.raises(OSError):
            disk.read_page(page.page_id)


class TestWalAppendFaults:
    def test_torn_append_is_unacknowledged_and_truncated(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        plan = FaultPlan(seed=1,
                         faults=(FaultSpec("wal.append", 2, "torn_write"),))
        log = WriteAheadLog(path, injector=plan.injector())
        log.append(OP_DELETE, encode_delete(1))
        with pytest.raises(OSError):
            log.append(OP_DELETE, encode_delete(2))
        recovered = WriteAheadLog(path)
        recovered.close()
        assert [r.lsn for r in scan_wal(path).records] == [1]

    def test_short_write_keeps_only_the_header_prefix(self, tmp_path):
        path = str(tmp_path / "short.wal")
        plan = FaultPlan(seed=1,
                         faults=(FaultSpec("wal.append", 1, "short_write"),))
        log = WriteAheadLog(path, injector=plan.injector())
        with pytest.raises(OSError):
            log.append(OP_DELETE, encode_delete(7))
        scan = scan_wal(path)
        assert scan.records == [] and scan.torn_bytes > 0

    def test_crc_flip_is_detected_not_replayed(self, tmp_path):
        path = str(tmp_path / "crc.wal")
        plan = FaultPlan(seed=1,
                         faults=(FaultSpec("wal.append", 2, "crc_flip"),))
        log = WriteAheadLog(path, injector=plan.injector())
        for oid in (1, 2, 3):  # all acknowledged; record 2 damaged on disk
            log.append(OP_DELETE, encode_delete(oid))
        log.close()
        assert scan_wal(path).is_corrupt
        with pytest.raises(CorruptRecordError):
            WriteAheadLog(path)

    def test_fsync_fail_raises_after_the_write(self, tmp_path):
        path = str(tmp_path / "fsync.wal")
        plan = FaultPlan(seed=1,
                         faults=(FaultSpec("wal.append", 1, "fsync_fail"),))
        log = WriteAheadLog(path, injector=plan.injector())
        with pytest.raises(OSError, match="fsync"):
            log.append(OP_DELETE, encode_delete(1))
        log.close()


class TestCheckpointRetryAndStatus:
    def _deployment(self, tmp_path, updates=3):
        directory = str(tmp_path / "live")
        engine, _ = _build()
        engine.save_generation(directory)
        live = QueryEngine.open_live(directory)
        rng = random.Random(0)
        base = max(live.by_id) + 1000
        for index in range(updates):
            live.insert(synthesize_object(base + index, rng, live.domain))
        return directory, live

    def test_retries_record_status_and_reraise(self, tmp_path, monkeypatch):
        directory, live = self._deployment(tmp_path)
        checkpointer = Checkpointer(live, interval=3600.0, retry_attempts=2,
                                    retry_backoff=0.0)
        calls = {"n": 0}

        def explode(force):
            calls["n"] += 1
            raise OSError("disk on fire")

        monkeypatch.setattr(checkpointer, "_checkpoint_once", explode)
        with pytest.raises(OSError, match="disk on fire"):
            checkpointer.run_once(force=True)
        live.close_wal()
        assert calls["n"] == 2
        assert checkpointer.consecutive_failures == 2
        status = read_checkpoint_status(directory)
        assert status is not None
        assert status["consecutive_failures"] == 2
        assert "disk on fire" in status["last_error"]

    def test_success_clears_failure_state(self, tmp_path):
        directory, live = self._deployment(tmp_path)
        checkpointer = Checkpointer(live, interval=3600.0)
        checkpointer.last_error = OSError("stale")
        checkpointer.consecutive_failures = 3
        assert checkpointer.run_once(force=True) is not None
        live.close_wal()
        assert checkpointer.consecutive_failures == 0
        assert checkpointer.last_error is None
        status = read_checkpoint_status(directory)
        assert status["last_error"] is None
        assert status["last_checkpoint"]["generation"] == 2
        assert read_manifest(directory).previous["generation"] == 1

    def test_verify_before_flip_rejects_a_bad_snapshot(self, tmp_path,
                                                       monkeypatch):
        """A checkpoint whose freshly written snapshot fails verification
        must not flip the manifest (generation N keeps serving)."""
        import repro.wal.checkpoint as checkpoint_module

        directory, live = self._deployment(tmp_path)

        def always_corrupt(path):
            from repro.storage.pagestore import CorruptSnapshotError
            raise CorruptSnapshotError(f"injected verification failure: {path}")

        monkeypatch.setattr(checkpoint_module, "verify_snapshot_file",
                            always_corrupt)
        checkpointer = Checkpointer(live, interval=3600.0, retry_attempts=1)
        with pytest.raises(Exception, match="injected verification failure"):
            checkpointer.run_once(force=True)
        live.close_wal()
        manifest = read_manifest(directory)
        assert manifest.generation == 1
        assert not [name for name in os.listdir(directory)
                    if name == "gen-000002.snap"]


class TestQuarantineFallback:
    def test_corrupt_generation_falls_back_and_quarantines(self, tmp_path):
        directory = str(tmp_path / "live")
        engine, _ = _build()
        engine.save_generation(directory)
        live = QueryEngine.open_live(directory)
        rng = random.Random(0)
        base = max(live.by_id) + 1000
        for index in range(3):
            live.insert(synthesize_object(base + index, rng, live.domain))
        Checkpointer(live, interval=3600.0).run_once(force=True)
        live.close_wal()

        manifest = read_manifest(directory)
        assert manifest.generation == 2
        flip_byte(os.path.join(directory, manifest.snapshot), seed=1)

        fallen = QueryEngine.open_live(directory, verify=True)
        fallen.close_wal()
        assert read_manifest(directory).generation == 1
        assert len(list_quarantined(directory)) == 1
        # The fallback manifest records no predecessor of its own: a second
        # corruption cannot loop.
        assert read_manifest(directory).previous is None

    def test_fallback_without_previous_reraises(self, tmp_path):
        directory = str(tmp_path / "live")
        engine, _ = _build()
        engine.save_generation(directory)
        manifest = read_manifest(directory)
        tear_file(os.path.join(directory, manifest.snapshot), keep_bytes=100)
        from repro.storage.pagestore import CorruptSnapshotError

        with pytest.raises(CorruptSnapshotError):
            QueryEngine.open_live(directory, verify=True)
        assert list_quarantined(directory) == []

    def test_quarantine_helpers(self, tmp_path):
        directory = str(tmp_path / "live")
        os.makedirs(directory)
        snap = os.path.join(directory, "gen-000007.snap")
        with open(snap, "wb") as handle:
            handle.write(b"x" * 32)
        moved = quarantine_snapshot(directory, "gen-000007.snap")
        assert moved.endswith(".quarantined")
        assert not os.path.exists(snap)
        assert list_quarantined(directory) == ["gen-000007.snap.quarantined"]


class TestServeFaultHooks:
    def test_worker_hang_fault_delays_then_answers(self, tmp_path):
        from repro.serve import ServeConfig, WorkerRuntime
        from repro.serve.protocol import OP_PING, Request

        engine, _ = _build()
        snapshot = str(tmp_path / "engine.snap")
        engine.save(snapshot)
        plan = FaultPlan(faults=(FaultSpec("worker.request", 2, "hang", 0.0),))
        runtime = WorkerRuntime(
            0, ServeConfig(snapshot_path=snapshot), injector=plan.injector()
        )
        first = runtime.handle(Request(request_id=1, op=OP_PING))
        second = runtime.handle(Request(request_id=2, op=OP_PING))
        assert first.ok and second.ok
        assert runtime.injector.fired == [("worker.request", 2, "hang")]

    def test_hang_timeout_validation(self, tmp_path):
        from repro.serve import ServeConfig

        engine, _ = _build()
        snapshot = str(tmp_path / "engine.snap")
        engine.save(snapshot)
        assert ServeConfig(snapshot_path=snapshot, hang_timeout=2.0).hang_timeout == 2.0
        with pytest.raises(ValueError, match="hang_timeout"):
            ServeConfig(snapshot_path=snapshot, hang_timeout=-1.0)
