"""Unit tests for circles and minimum bounding circles."""

import math

import pytest

from repro.geometry.circle import Circle, circle_from_points, min_bounding_circle
from repro.geometry.point import Point


class TestCircleBasics:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1.0)

    def test_contains_point(self):
        c = Circle(Point(0, 0), 5.0)
        assert c.contains_point(Point(3, 4))
        assert c.contains_point(Point(5, 0))
        assert not c.contains_point(Point(5.1, 0))

    def test_contains_circle(self):
        outer = Circle(Point(0, 0), 10.0)
        inner = Circle(Point(2, 0), 3.0)
        assert outer.contains_circle(inner)
        assert not inner.contains_circle(outer)

    def test_intersects_circle(self):
        a = Circle(Point(0, 0), 2.0)
        b = Circle(Point(3, 0), 1.5)
        c = Circle(Point(10, 0), 1.0)
        assert a.intersects_circle(b)
        assert not a.intersects_circle(c)

    def test_area_perimeter_diameter(self):
        c = Circle(Point(0, 0), 2.0)
        assert c.area() == pytest.approx(math.pi * 4.0)
        assert c.perimeter() == pytest.approx(4.0 * math.pi)
        assert c.diameter == pytest.approx(4.0)

    def test_bounding_box(self):
        c = Circle(Point(1.0, 2.0), 3.0)
        assert c.bounding_box() == (-2.0, -1.0, 4.0, 5.0)

    def test_scaled_and_translated(self):
        c = Circle(Point(1.0, 1.0), 2.0)
        assert c.scaled(2.0).radius == pytest.approx(4.0)
        assert c.translated(Point(1.0, -1.0)).center == Point(2.0, 0.0)
        with pytest.raises(ValueError):
            c.scaled(-1.0)

    def test_sample_boundary(self):
        c = Circle(Point(0, 0), 1.0)
        samples = c.sample_boundary(8)
        assert len(samples) == 8
        for p in samples:
            assert p.norm() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            c.sample_boundary(0)


class TestCircleDistances:
    """The distances of Equations 2 and 3 of the paper."""

    def test_min_distance_outside(self):
        c = Circle(Point(0, 0), 2.0)
        assert c.min_distance(Point(5, 0)) == pytest.approx(3.0)

    def test_min_distance_inside_is_zero(self):
        c = Circle(Point(0, 0), 2.0)
        assert c.min_distance(Point(1, 0)) == 0.0
        assert c.min_distance(Point(0, 0)) == 0.0

    def test_max_distance(self):
        c = Circle(Point(0, 0), 2.0)
        assert c.max_distance(Point(5, 0)) == pytest.approx(7.0)
        assert c.max_distance(Point(0, 0)) == pytest.approx(2.0)

    def test_zero_radius_degenerates_to_point(self):
        c = Circle(Point(1, 1), 0.0)
        assert c.min_distance(Point(4, 5)) == pytest.approx(5.0)
        assert c.max_distance(Point(4, 5)) == pytest.approx(5.0)


class TestCircumcircles:
    def test_two_point_circle_is_diametral(self):
        c = circle_from_points(Point(0, 0), Point(4, 0))
        assert c.center == Point(2.0, 0.0)
        assert c.radius == pytest.approx(2.0)

    def test_three_point_circumcircle(self):
        c = circle_from_points(Point(0, 0), Point(4, 0), Point(0, 4))
        assert c.center.is_close(Point(2.0, 2.0))
        assert c.radius == pytest.approx(math.hypot(2, 2))

    def test_collinear_points_fallback(self):
        c = circle_from_points(Point(0, 0), Point(2, 0), Point(5, 0))
        assert c.radius == pytest.approx(2.5)


class TestMinBoundingCircle:
    def test_single_point(self):
        c = min_bounding_circle([Point(3, 3)])
        assert c.center == Point(3, 3)
        assert c.radius == 0.0

    def test_covers_all_points(self):
        points = [Point(0, 0), Point(4, 0), Point(2, 3), Point(1, 1), Point(3, -1)]
        c = min_bounding_circle(points)
        for p in points:
            assert c.contains_point(p, tol=1e-6)

    def test_two_far_points_define_diameter(self):
        c = min_bounding_circle([Point(0, 0), Point(10, 0), Point(5, 1)])
        assert c.radius == pytest.approx(5.0, abs=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            min_bounding_circle([])
