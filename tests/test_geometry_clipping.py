"""Unit tests for half-plane and smooth-constraint polygon clipping."""

import math

import pytest

from repro.geometry.clipping import (
    clip_polygon_by_constraint,
    clip_polygon_halfplane,
    clip_polygon_to_rect,
)
from repro.geometry.hyperbola import Hyperbola
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect


def square(size: float = 10.0) -> Polygon:
    return Polygon.from_rect(Rect(0.0, 0.0, size, size))


class TestHalfPlaneClipping:
    def test_clip_keeps_half_of_square(self):
        # Keep x <= 5.
        clipped = clip_polygon_halfplane(square(), 1.0, 0.0, -5.0)
        assert clipped.area() == pytest.approx(50.0)
        assert clipped.contains_point(Point(2.0, 5.0))
        assert not clipped.contains_point(Point(7.0, 5.0))

    def test_clip_no_effect_when_polygon_inside(self):
        clipped = clip_polygon_halfplane(square(), 1.0, 0.0, -100.0)
        assert clipped.area() == pytest.approx(100.0)

    def test_clip_everything_removed(self):
        clipped = clip_polygon_halfplane(square(), 1.0, 0.0, 100.0)
        assert clipped.is_empty()

    def test_diagonal_halfplane(self):
        # Keep x + y <= 10 over the 10x10 square: half the area.
        clipped = clip_polygon_halfplane(square(), 1.0, 1.0, -10.0)
        assert clipped.area() == pytest.approx(50.0)

    def test_clip_empty_polygon(self):
        assert clip_polygon_halfplane(Polygon.empty(), 1.0, 0.0, -5.0).is_empty()

    def test_clip_to_rect(self):
        clipped = clip_polygon_to_rect(square(), 2.0, 3.0, 6.0, 8.0)
        assert clipped.area() == pytest.approx(4.0 * 5.0)


class TestConstraintClipping:
    def test_circle_constraint_without_arc_sampler_is_conservative(self):
        # Keep points outside the circle of radius 5 around the origin
        # (constraint <= 0 means keep => use distance-based sign).  Without an
        # arc sampler the removed boundary is replaced by a straight chord,
        # which may only *over*-approximate the kept region (never lose area
        # that should be kept).
        def constraint(p: Point) -> float:
            return 5.0 - p.norm()  # positive inside the circle -> removed

        clipped = clip_polygon_by_constraint(square(), constraint, edge_samples=16)
        removed = 100.0 - clipped.area()
        quarter_disk = math.pi * 25.0 / 4.0
        chord_triangle = 12.5
        assert chord_triangle - 1e-6 <= removed <= quarter_disk + 1e-6
        # Every point that should be kept is still kept.
        for p in (Point(8.0, 8.0), Point(6.0, 1.0), Point(1.0, 6.0)):
            assert clipped.contains_point(p)

    def test_circle_constraint_with_arc_sampler_is_accurate(self):
        def constraint(p: Point) -> float:
            return 5.0 - p.norm()

        def arc_sampler(start: Point, end: Point):
            a0 = math.atan2(start.y, start.x)
            a1 = math.atan2(end.y, end.x)
            return [
                Point(5.0 * math.cos(a0 + (a1 - a0) * k / 17.0),
                      5.0 * math.sin(a0 + (a1 - a0) * k / 17.0))
                for k in range(1, 17)
            ]

        clipped = clip_polygon_by_constraint(
            square(), constraint, arc_sampler=arc_sampler, edge_samples=16
        )
        removed = 100.0 - clipped.area()
        assert removed == pytest.approx(math.pi * 25.0 / 4.0, rel=0.02)

    def test_constraint_with_no_effect(self):
        clipped = clip_polygon_by_constraint(square(), lambda p: -1.0)
        assert clipped.area() == pytest.approx(100.0)

    def test_constraint_removing_everything(self):
        clipped = clip_polygon_by_constraint(square(), lambda p: 1.0)
        assert clipped.is_empty()

    def test_halfplane_as_constraint_matches_exact_clip(self):
        def constraint(p: Point) -> float:
            return p.x - 5.0

        clipped = clip_polygon_by_constraint(square(), constraint, edge_samples=8)
        assert clipped.area() == pytest.approx(50.0, rel=1e-6)

    def test_uv_edge_clip_with_arc_sampler(self):
        # Clip the square by the outside region of a UV-edge and check that
        # the kept side contains the owner and excludes the point nearest to
        # the competing object.
        edge = Hyperbola.uv_edge(Point(2.0, 5.0), 0.5, Point(8.0, 5.0), 0.5)
        assert edge is not None

        clipped = clip_polygon_by_constraint(
            square(),
            edge.edge_value,
            arc_sampler=lambda a, b: edge.arc_between(a, b, count=16),
            edge_samples=8,
        )
        assert clipped.area() < 100.0
        assert clipped.contains_point(Point(2.0, 5.0))       # owner side kept
        assert not clipped.contains_point(Point(9.5, 5.0))   # competitor side removed
        # Boundary vertices introduced by the clip lie on the UV-edge.
        on_edge = [
            v for v in clipped.vertices if abs(edge.edge_value(v)) < 1e-6
        ]
        assert len(on_edge) >= 10

    def test_clipping_never_increases_area(self):
        poly = square()
        constraints = [
            lambda p: p.x - 7.0,
            lambda p: 3.0 - p.y,
            lambda p: (p.x - 5.0) ** 2 + (p.y - 5.0) ** 2 - 9.0,
        ]
        area = poly.area()
        for constraint in constraints:
            poly = clip_polygon_by_constraint(poly, constraint, edge_samples=10)
            assert poly.area() <= area + 1e-9
            area = poly.area()
