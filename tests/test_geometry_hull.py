"""Unit tests for convex hulls."""

import pytest

from repro.geometry.hull import convex_hull, convex_hull_polygon, is_convex, point_in_convex_hull
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


class TestConvexHull:
    def test_square_with_interior_points(self):
        points = [
            Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4),
            Point(2, 2), Point(1, 3), Point(3, 1),
        ]
        hull = convex_hull(points)
        assert len(hull) == 4
        assert set(p.as_tuple() for p in hull) == {(0, 0), (4, 0), (4, 4), (0, 4)}

    def test_collinear_points_dropped(self):
        points = [Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0), Point(1, 2)]
        hull = convex_hull(points)
        assert len(hull) == 3

    def test_degenerate_inputs(self):
        assert convex_hull([Point(1, 1)]) == [Point(1, 1)]
        assert len(convex_hull([Point(0, 0), Point(1, 1), Point(0, 0)])) == 2

    def test_hull_is_ccw(self):
        hull = convex_hull([Point(0, 0), Point(2, 0), Point(1, 2), Point(1, 0.5)])
        poly = Polygon(hull)
        assert poly.area() > 0
        assert is_convex(poly)

    def test_hull_contains_all_input_points(self):
        import random

        rng = random.Random(5)
        points = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(60)]
        hull = convex_hull(points)
        for p in points:
            assert point_in_convex_hull(p, hull, tol=1e-7)


class TestConvexityHelpers:
    def test_is_convex(self):
        square = Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])
        assert is_convex(square)
        concave = Polygon(
            [Point(0, 0), Point(2, 0), Point(2, 2), Point(1, 0.5), Point(0, 2)]
        )
        assert not is_convex(concave)

    def test_point_in_convex_hull_edge_cases(self):
        assert not point_in_convex_hull(Point(0, 0), [])
        assert point_in_convex_hull(Point(1, 1), [Point(1, 1)])
        assert point_in_convex_hull(Point(0.5, 0.0), [Point(0, 0), Point(1, 0)])
        assert not point_in_convex_hull(Point(0.5, 1.0), [Point(0, 0), Point(1, 0)])

    def test_convex_hull_polygon(self):
        poly = convex_hull_polygon([Point(0, 0), Point(2, 0), Point(1, 2), Point(1, 1)])
        assert isinstance(poly, Polygon)
        assert poly.area() == pytest.approx(2.0)
