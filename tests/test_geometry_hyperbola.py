"""Unit tests for the hyperbolic UV-edges (Equation 5 of the paper)."""

import math

import pytest

from repro.geometry.hyperbola import Hyperbola
from repro.geometry.point import Point


def make_edge(ci=None, ri=1.0, cj=None, rj=2.0):
    edge = Hyperbola.uv_edge(
        ci if ci is not None else Point(0, 0),
        ri,
        cj if cj is not None else Point(10, 0),
        rj,
    )
    assert edge is not None
    return edge


class TestConstruction:
    def test_nonexistent_when_regions_overlap(self):
        assert Hyperbola.uv_edge(Point(0, 0), 3.0, Point(4, 0), 2.0) is None
        assert Hyperbola.uv_edge(Point(0, 0), 1.0, Point(0, 0), 1.0) is None

    def test_exists_when_regions_disjoint(self):
        assert Hyperbola.uv_edge(Point(0, 0), 1.0, Point(10, 0), 2.0) is not None

    def test_coincident_centres_never_exist(self):
        # Regression for the guard simplification: `c <= a` alone must keep
        # covering focal_distance == 0, including the zero-radius corner
        # where both a and c are exactly 0 (the old code had a separate
        # `focal_distance == 0.0` test).
        assert Hyperbola.uv_edge(Point(3, 4), 0.0, Point(3, 4), 0.0) is None
        assert Hyperbola.uv_edge(Point(3, 4), 0.0, Point(3, 4), 2.0) is None
        assert Hyperbola.uv_edge(Point(-1, 2), 1.5, Point(-1, 2), 0.0) is None

    def test_parameters(self):
        edge = make_edge()
        assert edge.a == pytest.approx(1.5)       # (r_i + r_j) / 2
        c = 5.0                                    # dist / 2
        assert edge.b == pytest.approx(math.sqrt(c * c - edge.a * edge.a))
        assert edge.center == Point(5.0, 0.0)


class TestBranchGeometry:
    def test_points_on_branch_satisfy_distance_equation(self):
        edge = make_edge()
        for t in (-2.0, -0.7, 0.0, 0.4, 1.3, 2.5):
            p = edge.point_at(t)
            dist_min_i = p.distance_to(edge.focus_i) - edge.radius_i
            dist_max_j = p.distance_to(edge.focus_j) + edge.radius_j
            assert dist_min_i == pytest.approx(dist_max_j, abs=1e-9)

    def test_rotated_configuration(self):
        edge = make_edge(ci=Point(2, 3), ri=0.5, cj=Point(7, 9), rj=1.0)
        for t in (-1.0, 0.0, 1.0):
            p = edge.point_at(t)
            assert edge.edge_value(p) == pytest.approx(0.0, abs=1e-9)
            assert edge.implicit_value(p) == pytest.approx(0.0, abs=1e-7)

    def test_vertex_is_closest_branch_point_to_owner(self):
        edge = make_edge()
        vertex = edge.vertex()
        assert vertex.distance_to(edge.focus_i) < edge.point_at(1.0).distance_to(edge.focus_i)
        assert vertex.distance_to(edge.focus_i) < edge.point_at(-1.0).distance_to(edge.focus_i)

    def test_parameter_roundtrip(self):
        edge = make_edge(ci=Point(1, -2), ri=0.7, cj=Point(6, 4), rj=1.1)
        for t in (-1.5, -0.2, 0.0, 0.9, 2.2):
            p = edge.point_at(t)
            assert edge.parameter_of(p) == pytest.approx(t, abs=1e-9)

    def test_to_local_roundtrip(self):
        edge = make_edge(ci=Point(1, 1), ri=0.5, cj=Point(4, 5), rj=0.5)
        p = Point(2.3, -0.7)
        assert edge.to_world(edge.to_local(p)).is_close(p, tol=1e-9)

    def test_arc_between_lies_on_branch(self):
        edge = make_edge()
        start = edge.point_at(-1.0)
        end = edge.point_at(1.5)
        arc = edge.arc_between(start, end, count=10)
        assert len(arc) == 10
        for p in arc:
            assert abs(edge.edge_value(p)) < 1e-9
        assert edge.arc_between(start, end, count=0) == []


class TestMembership:
    def test_outside_region_side(self):
        edge = make_edge()
        # A point close to O_j is in the outside region: O_j certainly closer.
        assert edge.in_outside_region(Point(9.5, 0.0))
        # A point close to O_i is not.
        assert not edge.in_outside_region(Point(0.5, 0.0))

    def test_edge_value_matches_distance_semantics(self):
        edge = make_edge()
        q = Point(8.0, 2.0)
        dist_min_i = max(0.0, q.distance_to(edge.focus_i) - edge.radius_i)
        dist_max_j = q.distance_to(edge.focus_j) + edge.radius_j
        assert edge.edge_value(q) == pytest.approx(dist_min_i - dist_max_j)

    def test_edge_value_inside_owner_region_negative(self):
        edge = make_edge()
        assert edge.edge_value(Point(0.2, 0.1)) < 0
