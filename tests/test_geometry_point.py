"""Unit tests for the point/vector primitives."""

import math

import pytest

from repro.geometry.point import Point, centroid, cross, dot, orientation


class TestPointArithmetic:
    def test_addition_and_subtraction(self):
        a = Point(1.0, 2.0)
        b = Point(3.0, -1.0)
        assert a + b == Point(4.0, 1.0)
        assert b - a == Point(2.0, -3.0)

    def test_scalar_multiplication_and_division(self):
        p = Point(2.0, -4.0)
        assert p * 0.5 == Point(1.0, -2.0)
        assert 2 * p == Point(4.0, -8.0)
        assert p / 2.0 == Point(1.0, -2.0)

    def test_negation(self):
        assert -Point(1.5, -2.5) == Point(-1.5, 2.5)

    def test_iteration_and_tuple(self):
        p = Point(3.0, 7.0)
        assert list(p) == [3.0, 7.0]
        assert p.as_tuple() == (3.0, 7.0)

    def test_from_tuple_validates_length(self):
        assert Point.from_tuple([1, 2]) == Point(1.0, 2.0)
        with pytest.raises(ValueError):
            Point.from_tuple([1, 2, 3])


class TestPointMetrics:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)
        assert Point(1, 1).squared_distance_to(Point(4, 5)) == pytest.approx(25.0)

    def test_norm_and_normalized(self):
        p = Point(3.0, 4.0)
        assert p.norm() == pytest.approx(5.0)
        unit = p.normalized()
        assert unit.norm() == pytest.approx(1.0)
        assert unit.x == pytest.approx(0.6)

    def test_normalize_zero_vector_raises(self):
        with pytest.raises(ValueError):
            Point(0.0, 0.0).normalized()

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(10, 6)) == Point(5.0, 3.0)

    def test_angle_to(self):
        assert Point(0, 0).angle_to(Point(1, 0)) == pytest.approx(0.0)
        assert Point(0, 0).angle_to(Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_polar_constructor(self):
        p = Point.polar(2.0, math.pi / 2)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(2.0)

    def test_rotation_about_pivot(self):
        rotated = Point(2.0, 1.0).rotated(math.pi, about=Point(1.0, 1.0))
        assert rotated.is_close(Point(0.0, 1.0), tol=1e-9)

    def test_is_close(self):
        assert Point(1.0, 1.0).is_close(Point(1.0 + 1e-12, 1.0))
        assert not Point(1.0, 1.0).is_close(Point(1.1, 1.0))


class TestVectorProducts:
    def test_dot(self):
        assert dot(Point(1, 2), Point(3, 4)) == pytest.approx(11.0)

    def test_cross_sign(self):
        assert cross(Point(1, 0), Point(0, 1)) > 0
        assert cross(Point(0, 1), Point(1, 0)) < 0

    def test_orientation(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, 1)) > 0
        assert orientation(Point(0, 0), Point(1, 0), Point(2, 0)) == pytest.approx(0.0)


class TestCentroid:
    def test_centroid_of_square_corners(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(pts) == Point(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_points_are_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2
