"""Unit tests for simple polygons."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect


def unit_square() -> Polygon:
    return Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])


class TestPolygonConstruction:
    def test_orientation_normalised_to_ccw(self):
        clockwise = Polygon([Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)])
        assert clockwise.area() == pytest.approx(1.0)
        # Signed area of the stored ordering must be positive (CCW).
        verts = clockwise.vertices
        signed = sum(
            verts[i].x * verts[(i + 1) % 4].y - verts[(i + 1) % 4].x * verts[i].y
            for i in range(4)
        )
        assert signed > 0

    def test_duplicate_consecutive_vertices_removed(self):
        poly = Polygon([Point(0, 0), Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1), Point(0, 1)])
        assert len(poly) == 4

    def test_from_rect(self):
        poly = Polygon.from_rect(Rect(0, 0, 2, 3))
        assert poly.area() == pytest.approx(6.0)

    def test_regular_polygon(self):
        hexagon = Polygon.regular(Point(0, 0), 1.0, 6)
        assert len(hexagon) == 6
        assert hexagon.area() == pytest.approx(3.0 * math.sqrt(3) / 2.0, rel=1e-9)
        with pytest.raises(ValueError):
            Polygon.regular(Point(0, 0), 1.0, 2)

    def test_empty_polygon(self):
        assert Polygon.empty().is_empty()
        assert Polygon([Point(0, 0), Point(1, 1)]).is_empty()


class TestPolygonMeasurements:
    def test_area_and_perimeter(self):
        sq = unit_square()
        assert sq.area() == pytest.approx(1.0)
        assert sq.perimeter() == pytest.approx(4.0)

    def test_centroid_of_square(self):
        assert unit_square().centroid().is_close(Point(0.5, 0.5))

    def test_centroid_of_triangle(self):
        tri = Polygon([Point(0, 0), Point(3, 0), Point(0, 3)])
        assert tri.centroid().is_close(Point(1.0, 1.0))

    def test_bounding_rect(self):
        rect = unit_square().bounding_rect()
        assert (rect.xmin, rect.ymin, rect.xmax, rect.ymax) == (0, 0, 1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            Polygon.empty().centroid()


class TestPolygonPredicates:
    def test_contains_interior_and_boundary(self):
        sq = unit_square()
        assert sq.contains_point(Point(0.5, 0.5))
        assert sq.contains_point(Point(0.0, 0.5))  # boundary
        assert sq.contains_point(Point(1.0, 1.0))  # corner
        assert not sq.contains_point(Point(1.5, 0.5))

    def test_contains_concave(self):
        # L-shaped polygon.
        poly = Polygon(
            [Point(0, 0), Point(2, 0), Point(2, 1), Point(1, 1), Point(1, 2), Point(0, 2)]
        )
        assert poly.contains_point(Point(0.5, 1.5))
        assert poly.contains_point(Point(1.5, 0.5))
        assert not poly.contains_point(Point(1.5, 1.5))

    def test_max_and_min_distance_from(self):
        sq = unit_square()
        assert sq.max_distance_from(Point(0, 0)) == pytest.approx(math.sqrt(2))
        assert sq.min_distance_from(Point(0.5, 0.5)) == 0.0
        assert sq.min_distance_from(Point(2.0, 0.5)) == pytest.approx(1.0)

    def test_intersects_rect(self):
        sq = unit_square()
        assert sq.intersects_rect(Rect(0.5, 0.5, 2, 2))
        assert sq.intersects_rect(Rect(-1, -1, 2, 2))  # rect contains polygon
        assert not sq.intersects_rect(Rect(2, 2, 3, 3))
        # Polygon containing the rect entirely.
        big = Polygon.from_rect(Rect(-5, -5, 5, 5))
        assert big.intersects_rect(Rect(-1, -1, 1, 1))


class TestPolygonMisc:
    def test_translation(self):
        moved = unit_square().translated(Point(2.0, 3.0))
        assert moved.contains_point(Point(2.5, 3.5))
        assert not moved.contains_point(Point(0.5, 0.5))

    def test_edges_count(self):
        assert len(unit_square().edges()) == 4

    def test_sample_interior(self):
        samples = unit_square().sample_interior(5)
        assert samples
        assert all(unit_square().contains_point(p) for p in samples)
        assert Polygon.empty().sample_interior(5) == []
