"""Unit tests for axis-aligned rectangles."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect


class TestRectConstruction:
    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_from_points(self):
        r = Rect.from_points([Point(1, 5), Point(-2, 3), Point(0, 7)])
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (-2.0, 3.0, 1.0, 7.0)
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_from_center_and_square(self):
        r = Rect.from_center(Point(1, 1), 2.0, 3.0)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (-1.0, -2.0, 3.0, 4.0)
        s = Rect.square(Point(0, 0), 5.0)
        assert s.width == s.height == 5.0


class TestRectGeometry:
    def test_dimensions(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4.0
        assert r.height == 2.0
        assert r.area() == 8.0
        assert r.perimeter() == 12.0
        assert r.center == Point(2.0, 1.0)

    def test_corners_order(self):
        corners = Rect(0, 0, 1, 1).corners()
        assert corners == [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]

    def test_quarters_tile_the_rect(self):
        r = Rect(0, 0, 8, 4)
        quarters = r.quarters()
        assert len(quarters) == 4
        assert sum(q.area() for q in quarters) == pytest.approx(r.area())
        # Quadrants must not overlap except on boundaries.
        for i in range(4):
            for j in range(i + 1, 4):
                assert quarters[i].overlap_area(quarters[j]) == pytest.approx(0.0)

    def test_sample_grid(self):
        samples = Rect(0, 0, 1, 1).sample_grid(3)
        assert len(samples) == 9
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).sample_grid(1)


class TestRectPredicates:
    def test_contains_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(Point(1, 1))
        assert r.contains_point(Point(2, 2))
        assert not r.contains_point(Point(2.01, 1))
        assert r.contains_point(Point(2.01, 1), tol=0.02)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 5, 5))
        assert not outer.contains_rect(Rect(5, 5, 11, 11))

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert a.intersects(Rect(2, 2, 3, 3))  # touching counts
        assert not a.intersects(Rect(3, 3, 4, 4))

    def test_intersects_circle(self):
        r = Rect(0, 0, 2, 2)
        assert r.intersects_circle(Point(3, 1), 1.0)
        assert not r.intersects_circle(Point(4, 4), 1.0)


class TestRectDistances:
    def test_min_distance_inside_zero(self):
        assert Rect(0, 0, 2, 2).min_distance_to_point(Point(1, 1)) == 0.0

    def test_min_distance_outside(self):
        assert Rect(0, 0, 2, 2).min_distance_to_point(Point(5, 2)) == pytest.approx(3.0)
        assert Rect(0, 0, 2, 2).min_distance_to_point(Point(5, 6)) == pytest.approx(5.0)

    def test_max_distance(self):
        assert Rect(0, 0, 2, 2).max_distance_to_point(Point(0, 0)) == pytest.approx(
            math.hypot(2, 2)
        )


class TestRectCombination:
    def test_union(self):
        u = Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3))
        assert (u.xmin, u.ymin, u.xmax, u.ymax) == (0, 0, 3, 3)

    def test_intersection_and_overlap_area(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        inter = a.intersection(b)
        assert inter is not None
        assert inter.area() == pytest.approx(1.0)
        assert a.overlap_area(b) == pytest.approx(1.0)
        assert a.intersection(Rect(5, 5, 6, 6)) is None
        assert a.overlap_area(Rect(5, 5, 6, 6)) == 0.0

    def test_enlargement(self):
        a = Rect(0, 0, 2, 2)
        assert a.enlargement(Rect(0, 0, 1, 1)) == pytest.approx(0.0)
        assert a.enlargement(Rect(0, 0, 4, 2)) == pytest.approx(4.0)

    def test_expanded(self):
        e = Rect(0, 0, 2, 2).expanded(1.0)
        assert (e.xmin, e.ymin, e.xmax, e.ymax) == (-1.0, -1.0, 3.0, 3.0)
