"""Unit tests for segments and polylines."""

import pytest

from repro.geometry.point import Point
from repro.geometry.segment import Segment, polyline_length, sample_polyline


class TestSegmentBasics:
    def test_length_and_midpoint(self):
        s = Segment(Point(0, 0), Point(3, 4))
        assert s.length == pytest.approx(5.0)
        assert s.midpoint == Point(1.5, 2.0)

    def test_point_at(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.point_at(0.25) == Point(2.5, 0.0)

    def test_direction(self):
        s = Segment(Point(0, 0), Point(0, 5))
        assert s.direction().is_close(Point(0.0, 1.0))

    def test_sample(self):
        s = Segment(Point(0, 0), Point(4, 0))
        samples = s.sample(5)
        assert samples[0] == Point(0, 0)
        assert samples[-1] == Point(4, 0)
        assert len(samples) == 5
        with pytest.raises(ValueError):
            s.sample(1)


class TestSegmentDistance:
    def test_closest_point_interior(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.closest_point(Point(3, 5)) == Point(3.0, 0.0)
        assert s.distance_to_point(Point(3, 5)) == pytest.approx(5.0)

    def test_closest_point_clamped_to_endpoint(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.closest_point(Point(-4, 3)) == Point(0.0, 0.0)
        assert s.distance_to_point(Point(-4, 3)) == pytest.approx(5.0)

    def test_side_of(self):
        s = Segment(Point(0, 0), Point(1, 0))
        assert s.side_of(Point(0.5, 1.0)) > 0
        assert s.side_of(Point(0.5, -1.0)) < 0
        assert s.side_of(Point(0.5, 0.0)) == pytest.approx(0.0)


class TestSegmentIntersection:
    def test_crossing_segments(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        p = a.intersection(b)
        assert p is not None
        assert p.is_close(Point(1.0, 1.0))
        assert a.intersects(b)

    def test_parallel_non_intersecting(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(0, 1), Point(2, 1))
        assert a.intersection(b) is None

    def test_disjoint_on_same_line(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(2, 0), Point(3, 0))
        assert a.intersection(b) is None

    def test_collinear_overlap_returns_witness(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(1, 0), Point(3, 0))
        witness = a.intersection(b)
        assert witness is not None
        assert a.distance_to_point(witness) < 1e-9
        assert b.distance_to_point(witness) < 1e-9

    def test_touching_at_endpoint(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(1, 0), Point(1, 5))
        assert a.intersects(b)


class TestPolyline:
    def test_polyline_length(self):
        pts = [Point(0, 0), Point(3, 0), Point(3, 4)]
        assert polyline_length(pts) == pytest.approx(7.0)

    def test_sample_polyline_spread(self):
        pts = [Point(0, 0), Point(10, 0)]
        samples = sample_polyline(pts, 5)
        assert len(samples) == 5
        assert samples[0] == Point(0, 0)
        assert samples[-1].is_close(Point(10.0, 0.0))

    def test_sample_polyline_multi_segment(self):
        pts = [Point(0, 0), Point(4, 0), Point(4, 4)]
        samples = sample_polyline(pts, 9)
        # Arc-length parametrisation: half of the samples on each leg.
        on_first_leg = sum(1 for p in samples if p.y == pytest.approx(0.0, abs=1e-9))
        assert on_first_leg >= 4

    def test_sample_polyline_validation(self):
        with pytest.raises(ValueError):
            sample_polyline([Point(0, 0)], 3)
        with pytest.raises(ValueError):
            sample_polyline([Point(0, 0), Point(1, 1)], 0)
