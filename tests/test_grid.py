"""Tests for the uniform grid baseline index."""

import numpy as np
import pytest

from repro.core.uv_cell import answer_objects_brute_force
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.grid.uniform_grid import GridPNN, UniformGridIndex
from repro.storage.disk import DiskManager
from repro.uncertain.objects import UncertainObject


DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


def make_objects(count, seed=0, radius=25.0):
    rng = np.random.default_rng(seed)
    return [
        UncertainObject.gaussian(
            i,
            Point(float(rng.uniform(radius, 1000.0 - radius)),
                  float(rng.uniform(radius, 1000.0 - radius))),
            radius,
        )
        for i in range(count)
    ]


class TestGridStructure:
    def test_cell_of_clamps_to_domain(self):
        grid = UniformGridIndex(DOMAIN, resolution=10)
        assert grid.cell_of(Point(-5.0, 2000.0)) == (0, 9)
        assert grid.cell_of(Point(500.0, 500.0)) == (5, 5)

    def test_cell_rect_tiles_domain(self):
        grid = UniformGridIndex(DOMAIN, resolution=4)
        total = sum(grid.cell_rect(c).area() for c in grid._all_cells())
        assert total == pytest.approx(DOMAIN.area())

    def test_build_assigns_objects_to_overlapping_cells(self):
        grid = UniformGridIndex(DOMAIN, resolution=10)
        obj = UncertainObject.uniform(0, Point(100.0, 100.0), 60.0)
        grid.build([obj])
        # Object spans at least the home cell and its neighbours.
        home = grid.cell_of(obj.center)
        assert any(oid == 0 for oid, _ in grid.read_cell(home))
        assert any(oid == 0 for oid, _ in grid.read_cell((home[0] - 1, home[1])))

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            UniformGridIndex(DOMAIN, resolution=0)


class TestGridPNN:
    def test_matches_brute_force(self):
        objects = make_objects(90, seed=3)
        grid = UniformGridIndex(DOMAIN, resolution=8)
        grid.build(objects)
        pnn = GridPNN(grid, objects=objects)
        rng = np.random.default_rng(1)
        for _ in range(12):
            q = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            got = sorted(pnn.query(q, compute_probabilities=False).answer_ids)
            assert got == answer_objects_brute_force(objects, q)

    def test_probabilities_sum_to_one(self):
        objects = make_objects(40, seed=4, radius=60.0)
        grid = UniformGridIndex(DOMAIN, resolution=6)
        grid.build(objects)
        pnn = GridPNN(grid, objects=objects)
        result = pnn.query(Point(500.0, 500.0))
        assert result.total_probability() == pytest.approx(1.0, abs=1e-6)

    def test_io_counted(self):
        disk = DiskManager()
        objects = make_objects(60, seed=5)
        grid = UniformGridIndex(DOMAIN, resolution=8, disk=disk)
        grid.build(objects)
        pnn = GridPNN(grid, objects=objects)
        result = pnn.query(Point(123.0, 456.0), compute_probabilities=False)
        assert result.io is not None
        assert result.io.page_reads >= 1

    def test_requires_store_or_objects(self):
        grid = UniformGridIndex(DOMAIN, resolution=4)
        with pytest.raises(ValueError):
            GridPNN(grid)
