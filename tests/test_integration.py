"""End-to-end integration tests across indexes, datasets, and query paths.

These tests exercise the full pipeline on randomised datasets: build every
index (UV-index with IC and ICR, R-tree, uniform grid), run the same PNN
workload on each, and require every processor to return exactly the
brute-force answer set and mutually consistent probabilities.
"""

import numpy as np
import pytest

from repro import UVDiagram, load_dataset
from repro.core.uv_cell import answer_objects_brute_force
from repro.geometry.rectangle import Rect
from repro.grid.uniform_grid import GridPNN, UniformGridIndex
from repro.queries.probability import qualification_probabilities_sampling


@pytest.fixture(scope="module")
def clustered_bundle():
    return load_dataset("utility", 70, diameter=250.0, query_count=12, seed=31)


@pytest.fixture(scope="module")
def clustered_diagram(clustered_bundle):
    # Page capacity and R-tree fanout are set to the same (scaled-down) value
    # so that per-query I/O numbers of the two indexes are comparable, as in
    # the paper's setup where both use 4 KB pages.
    return UVDiagram.build(
        clustered_bundle.objects,
        clustered_bundle.domain,
        page_capacity=16,
        rtree_fanout=16,
        seed_knn=35,
    )


class TestCrossIndexConsistency:
    def test_uniform_data_all_indexes_agree(self):
        bundle = load_dataset("uniform", 60, diameter=350.0, query_count=10, seed=29)
        diagram = UVDiagram.build(
            bundle.objects, bundle.domain, page_capacity=8, seed_knn=30
        )
        grid = UniformGridIndex(bundle.domain, resolution=8)
        grid.build(bundle.objects)
        grid_pnn = GridPNN(grid, objects=bundle.objects)

        for q in bundle.queries:
            expected = answer_objects_brute_force(bundle.objects, q)
            assert sorted(diagram.pnn(q, compute_probabilities=False).answer_ids) == expected
            assert sorted(diagram.pnn_rtree(q, compute_probabilities=False).answer_ids) == expected
            assert sorted(grid_pnn.query(q, compute_probabilities=False).answer_ids) == expected

    def test_clustered_data_uv_index_correct(self, clustered_bundle, clustered_diagram):
        for q in clustered_bundle.queries:
            expected = answer_objects_brute_force(clustered_bundle.objects, q)
            got = sorted(clustered_diagram.pnn(q, compute_probabilities=False).answer_ids)
            assert got == expected

    def test_icr_diagram_matches_ic(self, clustered_bundle, clustered_diagram):
        icr = UVDiagram.build(
            clustered_bundle.objects,
            clustered_bundle.domain,
            method="icr",
            page_capacity=8,
            seed_knn=35,
        )
        for q in clustered_bundle.queries[:6]:
            assert sorted(icr.pnn(q, compute_probabilities=False).answer_ids) == sorted(
                clustered_diagram.pnn(q, compute_probabilities=False).answer_ids
            )


class TestProbabilityConsistency:
    def test_uv_and_rtree_probabilities_agree(self, clustered_bundle, clustered_diagram):
        q = clustered_bundle.queries[0]
        uv = clustered_diagram.pnn(q).probabilities
        rt = clustered_diagram.pnn_rtree(q).probabilities
        assert set(uv) == set(rt)
        for oid in uv:
            assert uv[oid] == pytest.approx(rt[oid], abs=1e-9)

    def test_integration_probabilities_close_to_sampling(self, clustered_bundle, clustered_diagram):
        q = clustered_bundle.queries[1]
        result = clustered_diagram.pnn(q)
        answers = [clustered_diagram.object(a.oid) for a in result.answers]
        sampled = qualification_probabilities_sampling(
            answers, q, worlds=15000, rng=np.random.default_rng(3)
        )
        for answer in result.answers:
            assert answer.probability == pytest.approx(sampled[answer.oid], abs=0.06)


class TestWorkloadLevelBehaviour:
    def test_every_query_has_at_least_one_answer(self, clustered_bundle, clustered_diagram):
        for q in clustered_bundle.queries:
            result = clustered_diagram.pnn(q, compute_probabilities=False)
            assert len(result.answers) >= 1

    def test_uv_index_io_never_worse_than_rtree_on_average(self, clustered_bundle, clustered_diagram):
        uv_total = 0
        rt_total = 0
        for q in clustered_bundle.queries:
            uv_total += clustered_diagram.pnn(q, compute_probabilities=False).io.page_reads
            rt_total += clustered_diagram.pnn_rtree(q, compute_probabilities=False).io.page_reads
        assert uv_total <= rt_total

    def test_pattern_queries_over_clustered_data(self, clustered_bundle, clustered_diagram):
        domain = clustered_bundle.domain
        dense_area = clustered_diagram.partitions_in(
            Rect(domain.xmin, domain.ymin, domain.xmin + domain.width / 2, domain.ymax)
        )
        assert dense_area.partitions
        total_area = sum(p.region.area() for p in dense_area.partitions)
        assert total_area > 0.0

    def test_answer_objects_are_nearby_objects(self, clustered_bundle, clustered_diagram):
        """Sanity: every answer object's minimum distance is within the
        smallest maximum distance over the whole dataset."""
        for q in clustered_bundle.queries[:5]:
            bound = min(o.max_distance(q) for o in clustered_bundle.objects)
            for oid in clustered_diagram.pnn(q, compute_probabilities=False).answer_ids:
                assert clustered_diagram.object(oid).min_distance(q) <= bound + 1e-9
