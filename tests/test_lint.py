"""Tests for ``repro.lint``: rules, suppressions, baselines, driver, CLI.

Each rule is exercised against the fixture trees under
``tests/lint_fixtures``: ``known_bad`` seeds at least one true positive per
rule (including the PR 4 ``is``-vs-``==`` oid bug, re-introduced verbatim in
``known_bad/queries/probability.py``), ``known_good`` is the corrected twin
and must lint completely clean.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import RULES, all_rules, lint_path
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.driver import default_root, parse_snippet, resolve_root, run_rules
from repro.lint.project import ProjectModel, parse_suppressions

FIXTURES = Path(__file__).parent / "lint_fixtures"
KNOWN_BAD = FIXTURES / "known_bad"
KNOWN_GOOD = FIXTURES / "known_good"


def _rule(rule_id):
    return RULES[rule_id]


def _findings_by_rule(report):
    by_rule = {}
    for finding in report.findings:
        by_rule.setdefault(finding.rule_id, []).append(finding)
    return by_rule


@pytest.fixture(scope="module")
def bad_report():
    return lint_path(KNOWN_BAD)


@pytest.fixture(scope="module")
def good_report():
    return lint_path(KNOWN_GOOD)


class TestRegistry:
    def test_at_least_eight_rules(self):
        rules = all_rules()
        assert len(rules) >= 8
        assert len({rule.id for rule in rules}) == len(rules)

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.id
            assert rule.title
            assert rule.rationale
            assert rule.hint


class TestFixtureTrees:
    """Every rule has a true positive in known_bad and none in known_good."""

    def test_known_good_is_completely_clean(self, good_report):
        assert good_report.findings == []
        assert good_report.parse_failures == []
        assert good_report.exit_code == 0

    def test_known_bad_triggers_every_rule(self, bad_report):
        fired = {finding.rule_id for finding in bad_report.findings}
        assert fired == set(RULES)
        assert bad_report.exit_code == 1

    @pytest.mark.parametrize(
        "rule_id, relpath, needle",
        [
            ("determinism", "core/construction.py", "no deterministic order"),
            ("determinism", "core/construction.py", "unseeded global generator"),
            ("determinism", "core/construction.py", "numpy's global random state"),
            ("determinism", "core/construction.py", "allocation addresses"),
            ("counted-io", "engine/engine.py", "load_page"),
            ("counted-io", "queries/executor.py", "delete_page"),
            ("frozen-spec", "queries/spec.py", "not frozen=True"),
            ("frozen-spec", "queries/spec.py", "outside __post_init__"),
            ("wire-complete", "queries/spec.py", "no from_dict()"),
            ("wire-complete", "queries/spec.py", "not registered in QUERY_TYPES"),
            ("wire-complete", "queries/spec.py", "not in the Query union"),
            ("wire-complete", "queries/result.py", "cannot be decoded"),
            ("wire-complete", "queries/result.py", "no to_dict/from_dict pair"),
            ("wire-complete", "queries/result.py", "cannot be serialized"),
            ("readonly-guard", "engine/engine.py", "without checking the readonly"),
            ("lock-discipline", "serve/router.py", "outside `with self._lock`"),
            ("float-eq", "queries/probability.py", "identity comparison"),
            ("float-eq", "queries/probability.py", "float literal"),
            ("picklable-work", "parallel/scheduler.py", "a lambda"),
            ("picklable-work", "parallel/scheduler.py", "nested function"),
            ("validated-replace", "queries/executor.py", "dataclasses.replace"),
            ("wal-ordering", "engine/live.py", "before appending"),
            ("wal-ordering", "wal/replay.py", "without a monotonic-LSN"),
            ("error-discipline", "serve/supervisor.py", "bare 'except:'"),
            ("error-discipline", "serve/supervisor.py", "silently swallows"),
            ("shard-map-coherence", "shard/router.py", "mutated in"),
            ("shard-map-coherence", "shard/router.py", "raw page store"),
        ],
    )
    def test_known_bad_finding(self, bad_report, rule_id, relpath, needle):
        matches = [
            finding
            for finding in bad_report.findings
            if finding.rule_id == rule_id
            and finding.path == relpath
            and needle in finding.message
        ]
        assert matches, (
            f"expected a {rule_id} finding in {relpath} matching {needle!r}"
        )

    def test_seeded_pr4_oid_bug_is_caught(self, bad_report):
        """The known-bad tree reintroduces the PR 4 `is`-vs-`==` oid bug."""
        matches = [
            finding
            for finding in bad_report.findings
            if finding.rule_id == "float-eq"
            and finding.path == "queries/probability.py"
            and "identity comparison" in finding.message
        ]
        assert len(matches) == 1
        assert "obj.oid is winner.oid" in matches[0].source_line

    def test_expected_finding_counts(self, bad_report):
        by_rule = _findings_by_rule(bad_report)
        counts = {rule_id: len(findings) for rule_id, findings in by_rule.items()}
        assert counts == {
            "determinism": 6,
            "counted-io": 5,
            "frozen-spec": 2,
            "wire-complete": 6,
            "readonly-guard": 1,
            "lock-discipline": 2,
            "float-eq": 2,
            "picklable-work": 3,
            "validated-replace": 2,
            "wal-ordering": 2,
            "error-discipline": 2,
            "shard-map-coherence": 2,
        }


class TestRealTree:
    def test_installed_package_lints_clean(self):
        """The repo's own source stays clean (suppressions carry rationales)."""
        report = lint_path(default_root())
        rendered = "\n".join(f.render() for f in report.all_findings())
        assert report.exit_code == 0, f"repo tree has lint findings:\n{rendered}"

    def test_resolve_root_accepts_src_and_repo_root(self):
        package = default_root()
        assert resolve_root(package.parent) == package
        assert resolve_root(package.parent.parent) == package


class TestSuppressions:
    def test_trailing_comment_suppresses_own_line(self):
        lines = ["x = a == 1.0  # repro-lint: ignore[float-eq] -- exact"]
        assert parse_suppressions(lines) == {1: {"float-eq"}}

    def test_standalone_comment_suppresses_next_line(self):
        lines = [
            "# repro-lint: ignore[float-eq] -- exact by construction",
            "x = a == 1.0",
        ]
        assert parse_suppressions(lines) == {2: {"float-eq"}}

    def test_bare_ignore_suppresses_all_rules(self):
        lines = ["x = a == 1.0  # repro-lint: ignore"]
        assert parse_suppressions(lines) == {1: {"*"}}

    def test_suppression_filters_matching_rule_only(self):
        source = parse_snippet(
            """
            def check(p):
                # repro-lint: ignore[float-eq] -- exact zero guard
                if p == 0.0:
                    return True
                return p == 1.0
            """,
            relpath="queries/probability.py",
        )
        project = ProjectModel([source])
        kept, suppressed = run_rules(project, [_rule("float-eq")])
        assert suppressed == 1
        assert len(kept) == 1
        assert "1.0" in kept[0].source_line

    def test_wrong_rule_id_does_not_suppress(self):
        source = parse_snippet(
            """
            # repro-lint: ignore[determinism]
            x = value == 0.5
            """,
            relpath="queries/probability.py",
        )
        project = ProjectModel([source])
        kept, suppressed = run_rules(project, [_rule("float-eq")])
        assert suppressed == 0
        assert len(kept) == 1


class TestBaseline:
    def test_round_trip_drops_recorded_findings(self, tmp_path, bad_report):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, bad_report.findings)
        fingerprints = load_baseline(baseline_path)
        assert fingerprints == {f.fingerprint for f in bad_report.findings}

        rebaselined = lint_path(KNOWN_BAD, baseline=fingerprints)
        assert rebaselined.findings == []
        assert rebaselined.baselined == len(bad_report.findings)
        assert rebaselined.exit_code == 0

    def test_fingerprint_is_line_number_independent(self):
        first = parse_snippet(
            "x = value == 0.5\n", relpath="queries/probability.py"
        )
        shifted = parse_snippet(
            "\n\n\nx = value == 0.5\n", relpath="queries/probability.py"
        )
        rule = _rule("float-eq")
        finding_a = run_rules(ProjectModel([first]), [rule])[0][0]
        finding_b = run_rules(ProjectModel([shifted]), [rule])[0][0]
        assert finding_a.line != finding_b.line
        assert finding_a.fingerprint == finding_b.fingerprint


class TestDriver:
    def test_syntax_error_becomes_parse_failure(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        report = lint_path(tmp_path)
        assert report.findings == []
        assert len(report.parse_failures) == 1
        assert report.parse_failures[0].rule_id == "parse-error"
        assert report.exit_code == 1

    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_path(KNOWN_GOOD, select=["no-such-rule"])

    def test_select_restricts_rules(self):
        report = lint_path(KNOWN_BAD, select=["float-eq"])
        assert report.rules_run == 1
        assert {f.rule_id for f in report.findings} == {"float-eq"}


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert lint_main([str(KNOWN_GOOD)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert lint_main([str(KNOWN_BAD)]) == 1
        out = capsys.readouterr().out
        assert "finding(s)" in out
        assert "float-eq" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--select", "no-such-rule", str(KNOWN_GOOD)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_json_report_and_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        code = lint_main(
            ["--format", "json", "-o", str(artifact), str(KNOWN_BAD)]
        )
        assert code == 1
        stdout_report = json.loads(capsys.readouterr().out)
        file_report = json.loads(artifact.read_text(encoding="utf-8"))
        assert stdout_report == file_report
        assert file_report["summary"]["findings"] == len(file_report["findings"])
        assert all("fingerprint" in f for f in file_report["findings"])

    def test_write_then_use_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert lint_main(["--write-baseline", str(baseline), str(KNOWN_BAD)]) == 0
        capsys.readouterr()
        assert lint_main(["--baseline", str(baseline), str(KNOWN_BAD)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "-q", str(KNOWN_GOOD)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_repro_cli_subcommand(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "-q", str(KNOWN_GOOD)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
