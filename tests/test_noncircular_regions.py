"""Tests for non-circular uncertainty regions handled via bounding circles.

Section III-C: a non-circular region is replaced by its minimum bounding
circle; the UV-diagram built over the enlarged regions is a conservative
approximation (an object's chance of being a nearest neighbour can only be
overestimated, never missed).
"""

import numpy as np
import pytest

from repro import UVDiagram
from repro.core.uv_cell import answer_objects_brute_force
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject
from repro.uncertain.pdf import UniformPdf


DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


def rectangle_region(oid, center, half_width, half_height):
    """An object whose true uncertainty region is a rectangle."""
    corners = [
        Point(center.x - half_width, center.y - half_height),
        Point(center.x + half_width, center.y - half_height),
        Point(center.x + half_width, center.y + half_height),
        Point(center.x - half_width, center.y + half_height),
    ]
    return UncertainObject.from_samples(oid, corners), corners


class TestFromSamples:
    def test_bounding_circle_covers_samples(self):
        obj, corners = rectangle_region(0, Point(200.0, 300.0), 40.0, 20.0)
        for corner in corners:
            assert obj.region.contains_point(corner, tol=1e-6)
        assert isinstance(obj.pdf, UniformPdf)
        assert obj.pdf.radius == pytest.approx(obj.radius)

    def test_single_sample_degenerates_to_point(self):
        obj = UncertainObject.from_samples(1, [Point(5.0, 6.0)])
        assert obj.radius == 0.0
        assert obj.center == Point(5.0, 6.0)

    def test_custom_pdf_must_match_radius(self):
        corners = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
        with pytest.raises(ValueError):
            UncertainObject.from_samples(2, corners, pdf=UniformPdf(1.0))


class TestConservativeApproximation:
    def test_diagram_over_converted_regions_is_superset(self):
        """Answer sets computed on bounding circles contain every object that
        could be an answer under the original (smaller) regions."""
        rng = np.random.default_rng(13)
        converted = []
        originals = []
        for i in range(40):
            center = Point(float(rng.uniform(80, 920)), float(rng.uniform(80, 920)))
            half_w = float(rng.uniform(10, 40))
            half_h = float(rng.uniform(10, 40))
            obj, corners = rectangle_region(i, center, half_w, half_h)
            converted.append(obj)
            # The "true" object modelled as the largest inscribed circle: a
            # certainly-smaller region than the rectangle.
            originals.append(
                UncertainObject.uniform(i, center, min(half_w, half_h))
            )

        diagram = UVDiagram.build(converted, DOMAIN, page_capacity=8, seed_knn=20)
        for _ in range(12):
            q = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            conservative = set(diagram.pnn(q, compute_probabilities=False).answer_ids)
            true_answers = set(answer_objects_brute_force(originals, q))
            assert true_answers <= conservative

    def test_zero_radius_objects_supported_end_to_end(self):
        rng = np.random.default_rng(14)
        points = [
            UncertainObject.point_object(
                i, Point(float(rng.uniform(50, 950)), float(rng.uniform(50, 950)))
            )
            for i in range(30)
        ]
        diagram = UVDiagram.build(points, DOMAIN, page_capacity=8, seed_knn=15)
        for _ in range(10):
            q = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            got = sorted(diagram.pnn(q, compute_probabilities=False).answer_ids)
            assert got == answer_objects_brute_force(points, q)
