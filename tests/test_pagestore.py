"""Unit tests for the page-store layer: codec, file format, mmap serving."""

import pytest

from repro.core.uv_index import UVIndexEntry
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.node import RTreeEntry
from repro.storage.codec import decode_entry, decode_page, encode_entry, encode_page
from repro.storage.disk import DiskManager
from repro.storage.page import Page
from repro.storage.pagestore import (
    FilePageStore,
    MemoryPageStore,
    MmapPageStore,
    PageOverflowError,
    PageStoreError,
    ReadOnlyStoreError,
    create_page_store,
    open_page_store,
    write_snapshot_file,
)
from repro.uncertain.objects import UncertainObject
from repro.uncertain.pdf import HistogramPdf


class TestCodec:
    def roundtrip(self, entry):
        return decode_entry(encode_entry(entry))

    def test_uv_index_entry(self):
        entry = UVIndexEntry(oid=7, mbc=Circle(Point(1.5, -2.25), 3.125))
        back = self.roundtrip(entry)
        assert back.oid == 7
        assert back.mbc == entry.mbc

    def test_rtree_leaf_entry(self):
        entry = RTreeEntry(mbr=Rect(0.0, 1.0, 2.0, 3.0), oid=42)
        back = self.roundtrip(entry)
        assert back.oid == 42
        assert back.mbr == entry.mbr
        assert back.child is None

    def test_grid_tuple(self):
        entry = (13, Circle(Point(4.0, 5.0), 6.0))
        assert self.roundtrip(entry) == entry

    def test_uncertain_object_pdf_families(self):
        for obj in [
            UncertainObject.uniform(1, Point(10.0, 20.0), 5.0),
            UncertainObject.gaussian(2, Point(-1.0, 2.0), 4.0),
            UncertainObject.gaussian(3, Point(0.0, 0.0), 4.0, sigma=0.7),
            UncertainObject(4, Circle(Point(3.0, 3.0), 2.0),
                            HistogramPdf(2.0, [0.1, 0.2, 0.3, 0.4])),
        ]:
            back = self.roundtrip(obj)
            assert back.oid == obj.oid
            assert back.region == obj.region
            assert type(back.pdf) is type(obj.pdf)
            # bit-identical radial mass -> identical probabilities after reopen
            for r in (0.0, 0.5, 1.0, 1.9, 5.0):
                assert back.pdf.radial_cdf(r) == obj.pdf.radial_cdf(r)

    def test_histogram_masses_restored_verbatim(self):
        pdf = HistogramPdf(2.0, [0.1, 0.2, 0.3, 0.4])
        obj = UncertainObject(9, Circle(Point(0.0, 0.0), 2.0), pdf)
        back = self.roundtrip(obj)
        assert back.pdf.masses == pdf.masses

    def test_pickle_fallback(self):
        entry = {"arbitrary": [1, 2, 3]}
        assert self.roundtrip(entry) == entry

    def test_page_roundtrip(self):
        page = Page(5, capacity=4, entries=[(1, Circle(Point(0, 0), 1.0)), "weird"])
        back = decode_page(5, 4, encode_page(page))
        assert back.page_id == 5
        assert back.capacity == 4
        assert back.entries == page.entries


class TestFilePageStore:
    def _page(self, pid, payload):
        return Page(pid, capacity=8, entries=list(payload))

    def test_store_load_delete_reopen(self, tmp_path):
        path = str(tmp_path / "pages.uv")
        store = FilePageStore.create(path)
        store.store_page(self._page(0, ["a", "b"]))
        store.store_page(self._page(1, ["c"]))
        store.store_page(self._page(3, []))  # gap at id 2
        assert store.load_page(1).entries == ["c"]
        store.delete_page(1)
        with pytest.raises(KeyError):
            store.load_page(1)
        assert store.page_ids() == [0, 3]
        assert store.next_page_id() == 4
        store.close()

        reopened = FilePageStore.open(path)
        assert reopened.page_ids() == [0, 3]
        assert reopened.load_page(0).entries == ["a", "b"]
        assert reopened.next_page_id() == 4
        reopened.close()

    def test_meta_roundtrip_and_growth_invalidation(self, tmp_path):
        path = str(tmp_path / "pages.uv")
        store = FilePageStore.create(path)
        store.store_page(self._page(0, ["x"]))
        store.write_meta({"answer": 42})
        assert store.read_meta() == {"answer": 42}
        # Growing the slot region past the meta tail drops the stale meta.
        store.store_page(self._page(1, ["y"]))
        store.close()
        reopened = FilePageStore.open(path)
        assert reopened.read_meta() is None
        assert reopened.load_page(1).entries == ["y"]
        reopened.close()

    def test_slot_overflow_raises(self, tmp_path):
        store = FilePageStore.create(str(tmp_path / "pages.uv"), slot_bytes=64)
        with pytest.raises(PageOverflowError):
            store.store_page(self._page(0, ["long entry " * 50]))
        store.close()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\x00" * 128)
        with pytest.raises(PageStoreError):
            FilePageStore.open(str(path))


class TestMmapPageStore:
    def test_lazy_read_and_overlay(self, tmp_path):
        path = str(tmp_path / "snap.uv")
        pages = [Page(0, 4, ["a"]), Page(1, 4, ["b"])]
        write_snapshot_file(path, pages, {"k": "v"})
        store = MmapPageStore(path)
        assert store.read_meta() == {"k": "v"}
        assert store.load_page(1).entries == ["b"]
        assert store.page_ids() == [0, 1]
        # updates go to the overlay, never the file
        size_before = (tmp_path / "snap.uv").stat().st_size
        store.store_page(Page(2, 4, ["new"]))
        store.delete_page(0)
        assert store.load_page(2).entries == ["new"]
        with pytest.raises(KeyError):
            store.load_page(0)
        assert store.page_ids() == [1, 2]
        assert (tmp_path / "snap.uv").stat().st_size == size_before
        with pytest.raises(ReadOnlyStoreError):
            store.write_meta({"nope": 1})
        store.close()


class TestFactories:
    def test_create_kinds(self, tmp_path):
        assert isinstance(create_page_store("memory"), MemoryPageStore)
        assert isinstance(
            create_page_store("file", str(tmp_path / "f.uv")), FilePageStore
        )
        with pytest.raises(ValueError):
            create_page_store("file")  # missing path
        with pytest.raises(ValueError):
            create_page_store("mmap", str(tmp_path / "m.uv"))  # builds not allowed
        with pytest.raises(ValueError):
            create_page_store("bogus")

    def test_open_memory_loads_eagerly(self, tmp_path):
        path = str(tmp_path / "snap.uv")
        write_snapshot_file(path, [Page(0, 4, ["a"])], {"k": 1}, next_page_id=7)
        store = open_page_store("memory", path)
        assert isinstance(store, MemoryPageStore)
        assert store.load_page(0).entries == ["a"]
        assert store.read_meta() == {"k": 1}

    def test_snapshot_preserves_next_page_id(self, tmp_path):
        path = str(tmp_path / "snap.uv")
        write_snapshot_file(path, [Page(0, 4, [])], {}, next_page_id=11)
        store = open_page_store("file", path)
        assert store.next_page_id() == 11
        store.close()


class TestDiskManagerOverStores:
    def test_file_backed_disk_roundtrip(self, tmp_path):
        path = str(tmp_path / "disk.uv")
        disk = DiskManager(store=FilePageStore.create(path))
        page = disk.allocate_page(capacity=4)
        page.add((1, Circle(Point(0, 0), 1.0)))
        disk.close()  # flushes the in-place mutation

        served = DiskManager(store=FilePageStore.open(path))
        assert served.peek_page(page.page_id).entries == [(1, Circle(Point(0, 0), 1.0))]
        assert served.next_page_id == disk.next_page_id

    def test_free_page_invalidates_buffer_pool(self):
        disk = DiskManager(buffer_pages=4)
        page = disk.allocate_page(capacity=4)
        disk.read_page(page.page_id)  # miss, admitted
        assert disk.read_page(page.page_id) is page  # hit
        assert disk.stats.cache_hits == 1
        disk.free_page(page.page_id)
        with pytest.raises(KeyError):
            disk.read_page(page.page_id)

    def test_write_page_refreshes_stale_frame(self):
        disk = DiskManager(buffer_pages=4)
        page = disk.allocate_page(capacity=4)
        disk.read_page(page.page_id)
        replacement = Page(page.page_id, capacity=4, entries=["fresh"])
        disk.write_page(replacement)
        assert disk.read_page(page.page_id).entries == ["fresh"]

    def test_buffer_pool_hits_skip_read_count_and_latency(self):
        disk = DiskManager(buffer_pages=2)
        page = disk.allocate_page(capacity=4)
        disk.read_page(page.page_id)
        before = disk.stats.page_reads
        disk.read_page(page.page_id)
        assert disk.stats.page_reads == before
        assert disk.stats.cache_hits == 1
        assert disk.stats.cache_misses == 1
        assert disk.stats.cache_hit_ratio == pytest.approx(0.5)
