"""Parallel sharded construction: parity, shard strategies, stats merging.

The contract under test is the strongest one the scheduler makes: a diagram
built with any worker count, shard strategy, or executor is **bit-identical**
to the serial build -- same leaf structure, same answer sets, same
probabilities -- for every backend.  Multiprocess executors run with small
datasets so the whole module stays fast even on single-core machines.
"""

import pytest

from repro import DiagramConfig, QueryEngine, generate_query_points
from repro.core.construction import (
    CellWorkSpec,
    ConstructionContext,
    ConstructionStats,
    build_uv_index_ic,
    build_uv_index_icr,
)
from repro.parallel import (
    ConstructionScheduler,
    MultiprocessingExecutor,
    SerialExecutor,
    shard_round_robin,
    shard_spatial_tiles,
)
from repro.storage.stats import TimingBreakdown

ALL_BACKENDS = ["ic", "icr", "basic", "rtree", "grid"]


def leaf_fingerprint(index):
    """Full structural identity of a UV-index: every leaf and its entries."""
    out = []
    for leaf in index.leaves():
        entries = index.read_leaf_entries(leaf)
        out.append((
            (leaf.region.xmin, leaf.region.ymin, leaf.region.xmax, leaf.region.ymax),
            tuple((e.oid, e.mbc.center.x, e.mbc.center.y, e.mbc.radius)
                  for e in entries),
        ))
    return out


def answer_profile(engine, queries):
    """Answer ids AND exact probabilities -- bit-level query parity."""
    return [
        [(a.oid, a.probability) for a in engine.pnn(q).sorted_by_probability()]
        for q in queries
    ]


@pytest.fixture(scope="module")
def spec(medium_dataset):
    objects, domain = medium_dataset
    return CellWorkSpec(
        method="ic", objects=tuple(objects), domain=domain, seed_knn=30
    )


# ---------------------------------------------------------------------- #
# shard strategies
# ---------------------------------------------------------------------- #
class TestSharding:
    def test_round_robin_covers_every_oid_once(self):
        shards = shard_round_robin(list(range(10)), 3)
        assert sorted(oid for shard in shards for oid in shard) == list(range(10))
        assert [len(s) for s in shards] == [4, 3, 3]

    def test_round_robin_drops_empty_shards(self):
        assert shard_round_robin([1, 2], 5) == [[1], [2]]

    def test_spatial_tiles_cover_every_oid_once(self, spec):
        shards = shard_spatial_tiles(spec, 4)
        all_oids = sorted(oid for shard in shards for oid in shard)
        assert all_oids == sorted(obj.oid for obj in spec.objects)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1  # near-equal chunks

    def test_spatial_tiles_are_deterministic(self, spec):
        assert shard_spatial_tiles(spec, 4) == shard_spatial_tiles(spec, 4)

    def test_scheduler_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown shard strategy"):
            ConstructionScheduler(workers=2, shard_strategy="hash")

    def test_scheduler_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers must be positive"):
            ConstructionScheduler(workers=0)


# ---------------------------------------------------------------------- #
# executors and the workers=1 edge case
# ---------------------------------------------------------------------- #
class TestExecutorSelection:
    def test_workers_1_selects_serial_executor(self):
        scheduler = ConstructionScheduler(workers=1)
        assert isinstance(scheduler.executor, SerialExecutor)

    def test_workers_above_1_selects_process_executor(self):
        scheduler = ConstructionScheduler(workers=3)
        assert isinstance(scheduler.executor, MultiprocessingExecutor)
        assert scheduler.executor.workers == 3

    def test_from_config(self):
        config = DiagramConfig(workers=2, shard_strategy="spatial_tile")
        scheduler = ConstructionScheduler.from_config(config)
        assert scheduler.workers == 2
        assert scheduler.shard_strategy == "spatial_tile"

    def test_workers_1_build_matches_no_scheduler(self, medium_dataset):
        objects, domain = medium_dataset
        index_plain, _ = build_uv_index_ic(
            objects, domain, seed_knn=30, page_capacity=16
        )
        scheduler = ConstructionScheduler(workers=1)
        index_sched, _ = build_uv_index_ic(
            objects, domain, seed_knn=30, page_capacity=16, scheduler=scheduler
        )
        assert leaf_fingerprint(index_plain) == leaf_fingerprint(index_sched)
        assert scheduler.last_report.executor == "serial"
        assert scheduler.last_report.shard_count == 1

    def test_report_records_shards(self, spec):
        scheduler = ConstructionScheduler(workers=2)
        results = scheduler.compute_cells(spec)
        assert len(results) == len(spec.objects)
        report = scheduler.last_report
        assert report.shard_count == 2
        assert sum(s.size for s in report.shards) == len(spec.objects)
        assert report.as_dict()["workers"] == 2


# ---------------------------------------------------------------------- #
# serial-vs-parallel parity on the construction functions
# ---------------------------------------------------------------------- #
class TestBuilderParity:
    @pytest.mark.parametrize("strategy", ["round_robin", "spatial_tile"])
    def test_ic_parallel_is_bit_identical(self, medium_dataset, strategy):
        objects, domain = medium_dataset
        serial_index, serial_stats = build_uv_index_ic(
            objects, domain, seed_knn=30, page_capacity=16
        )
        scheduler = ConstructionScheduler(
            workers=2, shard_strategy=strategy, executor="process"
        )
        parallel_index, parallel_stats = build_uv_index_ic(
            objects, domain, seed_knn=30, page_capacity=16, scheduler=scheduler
        )
        assert leaf_fingerprint(serial_index) == leaf_fingerprint(parallel_index)
        assert parallel_stats.avg_cr_objects == serial_stats.avg_cr_objects
        assert parallel_stats.c_pruning_ratio == serial_stats.c_pruning_ratio

    def test_icr_parallel_is_bit_identical(self, medium_dataset):
        objects, domain = medium_dataset
        serial_index, _ = build_uv_index_icr(
            objects[:40], domain, seed_knn=20, page_capacity=16
        )
        scheduler = ConstructionScheduler(workers=2, executor="process")
        parallel_index, _ = build_uv_index_icr(
            objects[:40], domain, seed_knn=20, page_capacity=16, scheduler=scheduler
        )
        assert leaf_fingerprint(serial_index) == leaf_fingerprint(parallel_index)

    def test_fallback_to_serial_on_pool_failure(self, spec):
        class ExplodingExecutor:
            name = "exploding"

            def run(self, spec, shards):
                raise OSError("no processes for you")

        scheduler = ConstructionScheduler(workers=2, executor=ExplodingExecutor())
        results = scheduler.compute_cells(spec)
        assert len(results) == len(spec.objects)
        assert scheduler.last_report.fell_back_to_serial
        assert scheduler.last_report.executor == "serial"

    def test_context_compute_is_pure(self, spec):
        context = ConstructionContext(spec)
        oid = spec.objects[0].oid
        first = context.compute(oid)
        second = context.compute(oid)
        assert first.ref_objects == second.ref_objects
        assert first.cr_objects == second.cr_objects


# ---------------------------------------------------------------------- #
# end-to-end parity across every backend
# ---------------------------------------------------------------------- #
class TestEngineParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_parallel_engine_answers_match_serial(self, medium_dataset, backend):
        objects, domain = medium_dataset
        subset = objects[:40]
        config = DiagramConfig(
            backend=backend,
            page_capacity=16,
            seed_knn=20,
            rtree_fanout=16,
            grid_resolution=8,
        )
        queries = generate_query_points(8, domain, seed=71)
        serial = QueryEngine.build(subset, domain, config)
        parallel = QueryEngine.build(subset, domain, config.replace(workers=2))
        assert answer_profile(parallel, queries) == answer_profile(serial, queries)

    def test_knn_parity_on_parallel_build(self, medium_dataset):
        import numpy as np

        objects, domain = medium_dataset
        config = DiagramConfig(backend="ic", page_capacity=16, seed_knn=20)
        serial = QueryEngine.build(objects[:40], domain, config)
        parallel = QueryEngine.build(objects[:40], domain, config.replace(workers=2))
        query = generate_query_points(1, domain, seed=5)[0]
        got_serial = serial.knn(query, k=3, worlds=300, rng=np.random.default_rng(9))
        got_parallel = parallel.knn(query, k=3, worlds=300, rng=np.random.default_rng(9))
        assert [(a.oid, a.probability) for a in got_serial.answers] == \
               [(a.oid, a.probability) for a in got_parallel.answers]

    def test_explicit_scheduler_wins_over_config(self, medium_dataset):
        objects, domain = medium_dataset
        scheduler = ConstructionScheduler(workers=2, executor="serial")
        engine = QueryEngine.build(
            objects[:30],
            domain,
            DiagramConfig(backend="ic", page_capacity=16, seed_knn=20),
            scheduler=scheduler,
        )
        assert scheduler.last_report is not None
        assert len(engine) == 30


# ---------------------------------------------------------------------- #
# config plumbing
# ---------------------------------------------------------------------- #
class TestConfig:
    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers must be positive"):
            DiagramConfig(workers=0)

    def test_shard_strategy_validated(self):
        with pytest.raises(ValueError, match="unknown shard_strategy"):
            DiagramConfig(shard_strategy="alphabetical")

    def test_round_trips_through_dict(self):
        config = DiagramConfig(workers=4, shard_strategy="spatial_tile")
        assert DiagramConfig.from_dict(config.to_dict()) == config


# ---------------------------------------------------------------------- #
# stats merging
# ---------------------------------------------------------------------- #
class TestStatsMerging:
    def _stats(self, objects, total, cr, ratio, bucket):
        timing = TimingBreakdown()
        timing.add(bucket, total)
        return ConstructionStats(
            method="ic",
            objects=objects,
            total_seconds=total,
            timing=timing,
            i_pruning_ratio=ratio,
            c_pruning_ratio=ratio,
            avg_cr_objects=cr,
        )

    def test_merge_weights_averages_by_object_count(self):
        a = self._stats(10, 1.0, 4.0, 0.9, "pruning")
        b = self._stats(30, 3.0, 8.0, 0.5, "indexing")
        merged = a + b
        assert merged.objects == 40
        assert merged.total_seconds == pytest.approx(4.0)
        assert merged.avg_cr_objects == pytest.approx((4.0 * 10 + 8.0 * 30) / 40)
        assert merged.c_pruning_ratio == pytest.approx((0.9 * 10 + 0.5 * 30) / 40)
        assert merged.timing.get("pruning") == pytest.approx(1.0)
        assert merged.timing.get("indexing") == pytest.approx(3.0)

    def test_merge_is_order_insensitive_on_aggregates(self):
        a = self._stats(10, 1.0, 4.0, 0.9, "pruning")
        b = self._stats(30, 3.0, 8.0, 0.5, "pruning")
        ab, ba = a + b, b + a
        assert ab.objects == ba.objects
        assert ab.avg_cr_objects == pytest.approx(ba.avg_cr_objects)
        assert ab.total_seconds == pytest.approx(ba.total_seconds)

    def test_sum_over_shard_list(self):
        shards = [self._stats(5, 0.5, 2.0, 0.8, "pruning") for _ in range(4)]
        merged = sum(shards)
        assert merged.objects == 20
        assert merged.avg_cr_objects == pytest.approx(2.0)
        assert merged.timing.get("pruning") == pytest.approx(2.0)

    def test_differing_methods_are_recorded(self):
        a = self._stats(5, 0.5, 2.0, 0.8, "pruning")
        b = ConstructionStats(method="icr", objects=5, total_seconds=0.5)
        assert (a + b).method == "ic+icr"

    def test_add_rejects_other_types(self):
        a = self._stats(5, 0.5, 2.0, 0.8, "pruning")
        with pytest.raises(TypeError):
            a + 3.5
