"""Persistence parity: build -> save -> open must serve identical answers.

For every backend, an engine reopened from a snapshot (in a fresh disk
manager, over each page-store kind) must return the same PNN answer sets and
probabilities, the same k-PNN rankings, the same partition queries, and the
same counted page reads as the engine that was saved -- the acceptance
criterion of the storage redesign.
"""

import numpy as np
import pytest

from repro import (
    DiagramConfig,
    Point,
    QueryEngine,
    UncertainObject,
    generate_query_points,
    generate_uniform_objects,
)
from repro.engine.backend import UnsupportedQueryError
from repro.geometry.rectangle import Rect
from repro.storage.pagestore import FilePageStore, MemoryPageStore, MmapPageStore

CONFIG = DiagramConfig(page_capacity=16, seed_knn=40, rtree_fanout=16,
                       grid_resolution=8)
BACKENDS = ("ic", "icr", "basic", "rtree", "grid")


def _build(backend, count=70, seed=4):
    # "basic" is exponential in the worst case; keep its input tiny.
    if backend == "basic":
        count = 12
    objects, domain = generate_uniform_objects(count, seed=seed, diameter=300.0)
    engine = QueryEngine.build(objects, domain, CONFIG.replace(backend=backend))
    return engine, domain


def _reads_per_query(engine, queries):
    reads = []
    for q in queries:
        before = engine.disk.stats.snapshot()
        engine.pnn(q, compute_probabilities=False)
        reads.append(engine.disk.stats.delta(before).page_reads)
    return reads


@pytest.mark.parametrize("backend", BACKENDS)
def test_save_open_parity(backend, tmp_path):
    engine, domain = _build(backend)
    queries = generate_query_points(6, domain, seed=17)
    path = str(tmp_path / f"{backend}.uv")
    reference = [engine.pnn(q) for q in queries]
    reference_reads = _reads_per_query(engine, queries)
    engine.save(path)

    reopened = QueryEngine.open(path)
    assert reopened.backend.name == backend
    assert len(reopened) == len(engine)
    for q, ref in zip(queries, reference):
        got = reopened.pnn(q)
        assert got.answer_ids == ref.answer_ids
        assert got.probabilities == ref.probabilities  # bit-identical
    assert _reads_per_query(reopened, queries) == reference_reads
    assert reopened.statistics() == engine.statistics()


@pytest.mark.parametrize("store_kind", ("file", "mmap", "memory"))
def test_store_kinds_serve_identically(store_kind, tmp_path):
    engine, domain = _build("ic")
    queries = generate_query_points(5, domain, seed=23)
    path = str(tmp_path / "snap.uv")
    reference = [engine.pnn(q) for q in queries]
    engine.save(path)

    reopened = QueryEngine.open(path, store=store_kind)
    expected_store = {"file": FilePageStore, "mmap": MmapPageStore,
                      "memory": MemoryPageStore}[store_kind]
    assert isinstance(reopened.disk.store, expected_store)
    assert reopened.config.store == store_kind
    for q, ref in zip(queries, reference):
        got = reopened.pnn(q)
        assert got.answer_ids == ref.answer_ids
        assert got.probabilities == ref.probabilities


@pytest.mark.parametrize("backend", ("ic", "rtree", "grid"))
def test_knn_and_partition_parity(backend, tmp_path):
    engine, domain = _build(backend)
    path = str(tmp_path / "snap.uv")
    engine.save(path)
    reopened = QueryEngine.open(path)

    q = Point(domain.xmin + domain.width / 3, domain.ymin + domain.height / 3)
    ka = engine.knn(q, 3, worlds=300, rng=np.random.default_rng(5))
    kb = reopened.knn(q, 3, worlds=300, rng=np.random.default_rng(5))
    assert [a.oid for a in ka.answers] == [a.oid for a in kb.answers]

    region = Rect(domain.xmin, domain.ymin,
                  domain.xmin + domain.width / 2, domain.ymin + domain.height / 2)
    pa = engine.partitions_in(region)
    pb = reopened.partitions_in(region)
    assert len(pa.partitions) == len(pb.partitions)
    assert pa.total_objects() == pb.total_objects()


def test_batch_parity_after_reopen(tmp_path):
    engine, domain = _build("ic")
    queries = generate_query_points(12, domain, seed=31)
    path = str(tmp_path / "snap.uv")
    engine.save(path)
    reopened = QueryEngine.open(path)
    batch = reopened.batch(queries, compute_probabilities=False)
    sequential = [engine.pnn(q, compute_probabilities=False) for q in queries]
    assert [r.answer_ids for r in batch] == [r.answer_ids for r in sequential]


@pytest.mark.parametrize("backend", ("ic", "grid"))
def test_live_updates_after_reopen(backend, tmp_path):
    engine, domain = _build(backend)
    path = str(tmp_path / "snap.uv")
    engine.save(path)
    reopened = QueryEngine.open(path)

    new = UncertainObject.gaussian(
        7777, Point(domain.xmin + domain.width / 2, domain.ymin + domain.height / 2),
        150.0,
    )
    engine.insert(new)
    reopened.insert(new)
    queries = generate_query_points(6, domain, seed=41)
    for q in queries:
        assert (reopened.pnn(q, compute_probabilities=False).answer_ids
                == engine.pnn(q, compute_probabilities=False).answer_ids)
    engine.delete(7777)
    reopened.delete(7777)
    for q in queries:
        assert (reopened.pnn(q, compute_probabilities=False).answer_ids
                == engine.pnn(q, compute_probabilities=False).answer_ids)


def test_updates_on_opened_engine_never_corrupt_the_snapshot(tmp_path):
    """Serving a snapshot is read-only: inserts go to an overlay, the file
    stays byte-identical and reopenable."""
    engine, domain = _build("ic", count=40)
    path = str(tmp_path / "snap.uv")
    engine.save(path)
    original_bytes = (tmp_path / "snap.uv").read_bytes()

    for store_kind in ("file", "mmap"):
        served = QueryEngine.open(path, store=store_kind)
        assert not served.disk.store.writable
        served.insert(UncertainObject.gaussian(
            9000, Point(domain.xmin + 800, domain.ymin + 800), 150.0))
        served.delete(9000)
        assert (tmp_path / "snap.uv").read_bytes() == original_bytes

    # The untouched snapshot still opens and answers.
    again = QueryEngine.open(path)
    q = generate_query_points(1, domain, seed=2)[0]
    assert again.pnn(q, compute_probabilities=False).answer_ids \
        == engine.pnn(q, compute_probabilities=False).answer_ids


def test_save_opened_engine_back_to_same_path(tmp_path):
    """Saving a read-only served engine over its own snapshot is safe."""
    engine, domain = _build("ic", count=40)
    path = str(tmp_path / "snap.uv")
    engine.save(path)
    served = QueryEngine.open(path)
    served.insert(UncertainObject.gaussian(
        9001, Point(domain.xmin + 900, domain.ymin + 900), 150.0))
    served.save(path)
    assert not served.dirty
    reopened = QueryEngine.open(path)
    assert 9001 in reopened.by_id
    q = generate_query_points(1, domain, seed=7)[0]
    assert (reopened.pnn(q, compute_probabilities=False).answer_ids
            == served.pnn(q, compute_probabilities=False).answer_ids)


def test_dirty_flag_lifecycle(tmp_path):
    engine, domain = _build("ic", count=30)
    assert engine.dirty  # never saved
    path = str(tmp_path / "snap.uv")
    engine.save(path)
    assert not engine.dirty
    reopened = QueryEngine.open(path)
    assert not reopened.dirty
    reopened.insert(UncertainObject.gaussian(
        8888, Point(domain.xmin + 500, domain.ymin + 500), 150.0))
    assert reopened.dirty
    reopened.save(str(tmp_path / "snap2.uv"))
    assert not reopened.dirty
    reopened.delete(8888)
    assert reopened.dirty


def test_open_rejects_meta_less_page_file(tmp_path):
    path = str(tmp_path / "bare.uv")
    store = FilePageStore.create(path)
    store.close()
    with pytest.raises(ValueError, match="no diagram snapshot"):
        QueryEngine.open(path)


def test_build_on_file_store_then_reopen_same_path(tmp_path):
    path = str(tmp_path / "live.uv")
    objects, domain = generate_uniform_objects(50, seed=6, diameter=300.0)
    engine = QueryEngine.build(
        objects, domain,
        CONFIG.replace(backend="ic", store="file", store_path=path),
    )
    assert isinstance(engine.disk.store, FilePageStore)
    queries = generate_query_points(5, domain, seed=13)
    reference = [engine.pnn(q) for q in queries]
    engine.save(path)  # in-place flush + meta
    reopened = QueryEngine.open(path)
    for q, ref in zip(queries, reference):
        got = reopened.pnn(q)
        assert got.answer_ids == ref.answer_ids
        assert got.probabilities == ref.probabilities


def test_build_rejects_mmap_store():
    objects, domain = generate_uniform_objects(10, seed=1, diameter=300.0)
    with pytest.raises(ValueError, match="read-mostly"):
        QueryEngine.build(
            objects, domain,
            CONFIG.replace(backend="ic", store="mmap", store_path="/tmp/x.uv"),
        )


def test_config_validates_store_fields():
    with pytest.raises(ValueError):
        DiagramConfig(store="bogus")
    with pytest.raises(ValueError):
        DiagramConfig(store="file")  # missing path
    with pytest.raises(ValueError):
        DiagramConfig(buffer_pages=-1)


def test_snapshot_unsupported_for_unregistered_backend():
    from repro.engine.backend import IndexBackend

    class Stub(IndexBackend):
        def candidates(self, query, cache=None):
            return []

        def range_candidates(self, rect):
            return []

        def insert(self, obj):
            pass

        def delete(self, oid):
            pass

        def statistics(self):
            return {}

    stub = Stub()
    stub.name = "stub"
    with pytest.raises(UnsupportedQueryError, match="snapshot"):
        stub.snapshot_state()


def test_update_churn_reaches_a_page_steady_state():
    """delete+insert cycles must not leak pages (R-tree rebuilds, object
    store, UV-index leaf lists); a leak would grow every future snapshot."""
    objects, domain = generate_uniform_objects(60, seed=3, diameter=300.0)
    engine = QueryEngine.build(objects, domain, CONFIG.replace(backend="ic"))
    victim = engine.objects[5]
    counts = []
    for _ in range(6):
        engine.delete(victim.oid)
        engine.insert(victim)
        counts.append(engine.disk.page_count)
    assert counts[-1] == counts[1], f"page count keeps growing: {counts}"


class TestBufferPoolIntegration:
    def test_repeat_queries_hit_the_pool(self):
        objects, domain = generate_uniform_objects(70, seed=4, diameter=300.0)
        engine = QueryEngine.build(
            objects, domain, CONFIG.replace(backend="ic", buffer_pages=64)
        )
        q = generate_query_points(1, domain, seed=3)[0]
        engine.disk.reset_stats()
        first = engine.pnn(q, compute_probabilities=False)
        cold_reads = engine.io_stats().page_reads
        second = engine.pnn(q, compute_probabilities=False)
        stats = engine.io_stats()
        assert first.answer_ids == second.answer_ids
        assert stats.page_reads == cold_reads  # warm query fully cached
        assert stats.cache_hits > 0
        assert 0.0 < stats.cache_hit_ratio < 1.0

    def test_buffer_pages_survive_snapshot_roundtrip(self, tmp_path):
        objects, domain = generate_uniform_objects(40, seed=8, diameter=300.0)
        engine = QueryEngine.build(
            objects, domain, CONFIG.replace(backend="ic", buffer_pages=16)
        )
        path = str(tmp_path / "snap.uv")
        engine.save(path)
        reopened = QueryEngine.open(path)
        assert reopened.config.buffer_pages == 16
        assert reopened.disk.buffer_pool is not None
        override = QueryEngine.open(path, buffer_pages=0)
        assert override.disk.buffer_pool is None  # explicit 0 disables the pool
        assert override.config.buffer_pages == 0

    def test_pool_answers_match_pool_off_engine_under_updates(self):
        objects, domain = generate_uniform_objects(60, seed=9, diameter=300.0)
        pooled = QueryEngine.build(
            objects, domain, CONFIG.replace(backend="ic", buffer_pages=8)
        )
        plain = QueryEngine.build(objects, domain, CONFIG.replace(backend="ic"))
        # Warm the pool, then force page churn through inserts and deletes.
        workload = generate_query_points(8, domain, seed=19)
        for q in workload:
            pooled.pnn(q, compute_probabilities=False)
        for i in range(5):
            extra = UncertainObject.gaussian(
                600 + i,
                Point(domain.xmin + 400 + 350 * i, domain.ymin + 900),
                150.0,
            )
            pooled.insert(extra)
            plain.insert(extra)
        pooled.delete(602)
        plain.delete(602)
        for q in workload:
            assert (pooled.pnn(q, compute_probabilities=False).answer_ids
                    == plain.pnn(q, compute_probabilities=False).answer_ids)
