"""The cost-based planner, execute/explain entry points, and batch streaming."""

import warnings

import numpy as np
import pytest

from repro import (
    DiagramConfig,
    Point,
    QueryEngine,
    Rect,
    generate_query_points,
    generate_uniform_objects,
)
from repro.core.pattern import PartitionQueryResult
from repro.engine.engine import BatchStream
from repro.engine.planner import STRATEGY_BATCH, STRATEGY_RTREE
from repro.queries.knn import KNNResult
from repro.queries.result import PNNResult
from repro.queries.spec import BatchQuery, KNNQuery, PNNQuery, RangeQuery

BACKENDS = ("ic", "icr", "basic", "rtree", "grid")
CONFIG = DiagramConfig(page_capacity=16, seed_knn=60, rtree_fanout=16,
                       grid_resolution=16)


@pytest.fixture(scope="module")
def dataset():
    objects, domain = generate_uniform_objects(150, seed=5, diameter=400.0)
    queries = generate_query_points(6, domain, seed=77)
    return objects, domain, queries


@pytest.fixture(scope="module")
def engines(dataset):
    objects, domain, _ = dataset
    return {
        name: QueryEngine.build(objects, domain, CONFIG.replace(backend=name))
        for name in BACKENDS
    }


class TestExecuteMatchesLegacy:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_execute_pnn_is_answer_and_probability_identical(
        self, engines, dataset, backend
    ):
        _, _, queries = dataset
        engine = engines[backend]
        for q in queries:
            new = engine.execute(PNNQuery(q))
            with pytest.warns(DeprecationWarning, match="pnn"):
                legacy = engine.pnn(q)
            assert new.answer_ids == legacy.answer_ids
            for oid, p in legacy.probabilities.items():
                assert new.probabilities[oid] == pytest.approx(p, abs=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_execute_without_probabilities(self, engines, dataset, backend):
        _, _, queries = dataset
        engine = engines[backend]
        result = engine.execute(PNNQuery(queries[0], compute_probabilities=False))
        assert isinstance(result, PNNResult)
        assert all(a.probability == 0.0 for a in result.answers)

    def test_legacy_knn_and_execute_agree(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        with pytest.warns(DeprecationWarning, match="knn"):
            legacy = engine.knn(queries[0], 3, worlds=500)
        new = engine.execute(KNNQuery(queries[0], 3, worlds=500))
        assert isinstance(new, KNNResult)
        assert new.answer_ids == legacy.answer_ids

    def test_knn_seed_is_deterministic(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        a = engine.execute(KNNQuery(queries[0], 2, worlds=400, seed=42))
        b = engine.execute(KNNQuery(queries[0], 2, worlds=400, seed=42))
        assert [(x.oid, x.probability) for x in a.answers] == (
            [(x.oid, x.probability) for x in b.answers]
        )

    def test_knn_rng_override(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        result = engine.execute(
            KNNQuery(queries[0], 2, worlds=400), rng=np.random.default_rng(7)
        )
        assert isinstance(result, KNNResult)

    def test_range_query_matches_legacy_partitions(self, engines):
        engine = engines["ic"]
        region = Rect(2000.0, 2000.0, 6000.0, 6000.0)
        new = engine.execute(RangeQuery(region))
        with pytest.warns(DeprecationWarning, match="partitions_in"):
            legacy = engine.partitions_in(region)
        assert isinstance(new, PartitionQueryResult)
        assert len(new.partitions) == len(legacy.partitions)

    def test_pnn_rtree_wrapper_matches_rtree_backend(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        for q in queries[:3]:
            with pytest.warns(DeprecationWarning, match="pnn_rtree"):
                via_wrapper = engine.pnn_rtree(q)
            baseline = engines["rtree"].execute(PNNQuery(q))
            assert sorted(via_wrapper.answer_ids) == sorted(baseline.answer_ids)
            for oid, p in baseline.probabilities.items():
                assert via_wrapper.probabilities[oid] == pytest.approx(p, abs=1e-12)

    def test_batch_wrapper_warns_and_matches_stream(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        with pytest.warns(DeprecationWarning, match="batch"):
            legacy = engine.batch(queries, compute_probabilities=False)
        stream = engine.execute(
            BatchQuery.of(queries, compute_probabilities=False)
        )
        streamed = [result for _, result, _ in stream]
        assert [r.answer_ids for r in streamed] == [
            r.answer_ids for r in legacy.results
        ]

    def test_unknown_descriptor_rejected(self, engines):
        with pytest.raises(TypeError, match="descriptor"):
            engines["ic"].execute("not a query")


class TestPlans:
    def test_pnn_plan_fields(self, engines, dataset):
        _, _, queries = dataset
        plan = engines["ic"].planner.plan(PNNQuery(queries[0], threshold=0.2))
        assert plan.kind == "pnn"
        assert plan.backend == "ic"
        assert plan.strategy in ("uv-point-lookup", STRATEGY_RTREE)
        assert plan.prob_kernel == "vectorized"
        assert plan.threshold == 0.2
        assert plan.estimated_page_reads > 0
        assert plan.estimated_candidates > 0
        assert plan.notes
        assert "tau=0.2" in plan.describe()

    def test_rtree_backend_plans_its_own_strategy(self, engines, dataset):
        _, _, queries = dataset
        plan = engines["rtree"].planner.plan(PNNQuery(queries[0]))
        assert plan.strategy == STRATEGY_RTREE

    def test_compute_probabilities_false_plans_no_kernel(self, engines, dataset):
        _, _, queries = dataset
        plan = engines["ic"].planner.plan(
            PNNQuery(queries[0], compute_probabilities=False)
        )
        assert plan.prob_kernel == "none"

    def test_batch_plan(self, engines, dataset):
        _, _, queries = dataset
        plan = engines["ic"].planner.plan(BatchQuery.of(queries))
        assert plan.kind == "batch"
        assert plan.strategy == STRATEGY_BATCH
        assert plan.estimated_page_reads > 0

    def test_statistics_are_cached_until_structure_changes(self, dataset):
        objects, domain, _ = dataset
        engine = QueryEngine.build(objects, domain, CONFIG.replace(backend="grid"))
        calls = {"n": 0}
        original = engine.backend.statistics

        def counting():
            calls["n"] += 1
            return original()

        engine.backend.statistics = counting
        q = PNNQuery(Point(5000.0, 5000.0))
        engine.planner.plan(q)
        engine.planner.plan(q)
        assert calls["n"] == 1
        # a live update bumps the structure version and invalidates the cache
        engine.delete(objects[0].oid)
        engine.planner.plan(q)
        assert calls["n"] == 2

    def test_plan_rejects_unservable_forced_strategy(self, engines, dataset):
        _, _, queries = dataset
        with pytest.raises(ValueError, match="cannot serve"):
            engines["ic"].planner.plan(
                PNNQuery(queries[0]), force_strategy="no-such-strategy"
            )


class TestExplain:
    def test_explain_reports_estimates_and_actuals(self, engines, dataset):
        _, _, queries = dataset
        report = engines["ic"].explain(PNNQuery(queries[0]))
        assert report.actual_page_reads > 0
        assert report.estimated_page_reads > 0
        # the smoke-level accuracy contract: estimates within 2x of actuals
        assert 0.5 <= report.estimate_ratio <= 2.0
        assert isinstance(report.result, PNNResult)
        assert "actual page reads" in report.describe()
        assert {"index", "object_retrieval", "probability"} <= set(
            report.timings.buckets
        )

    def test_explain_batch_materialises_triples(self, engines, dataset):
        _, _, queries = dataset
        report = engines["ic"].explain(BatchQuery.of(queries[:3]))
        assert isinstance(report.result, list)
        assert len(report.result) == 3
        for query, result, plan in report.result:
            assert isinstance(query, PNNQuery)
            assert isinstance(result, PNNResult)
            assert plan.kind == "pnn"

    def test_explain_range_query(self, engines):
        report = engines["grid"].explain(
            RangeQuery(Rect(1000.0, 1000.0, 4000.0, 4000.0))
        )
        assert isinstance(report.result, PartitionQueryResult)
        assert report.plan.kind == "range"
        assert "partitions" in report.timings.buckets


class TestBatchStreaming:
    def test_stream_yields_triples_lazily(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        stream = engine.execute(BatchQuery.of(queries))
        assert isinstance(stream, BatchStream)
        first = next(stream)
        assert first[0].point == queries[0]
        assert isinstance(first[1], PNNResult)
        remaining = list(stream)
        assert len(remaining) == len(queries) - 1

    def test_stream_shares_read_cache(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        # repeat the same point: every re-visit must hit the shared cache
        repeated = [queries[0]] * 4
        stream = engine.execute(BatchQuery.of(repeated))
        results = [r for _, r, _ in stream]
        assert stream.cache.hits >= 3
        assert all(
            r.answer_ids == results[0].answer_ids for r in results
        )

    def test_stream_answers_match_sequential_execution(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["grid"]
        sequential = [engine.execute(PNNQuery(q)) for q in queries]
        streamed = [r for _, r, _ in engine.execute(BatchQuery.of(queries))]
        for a, b in zip(sequential, streamed):
            assert a.answer_ids == b.answer_ids
            assert a.probabilities == b.probabilities

    def test_stream_with_mixed_shapes_plans_per_shape(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        batch = BatchQuery(
            queries=(
                PNNQuery(queries[0]),
                PNNQuery(queries[1], threshold=0.3),
                PNNQuery(queries[2], compute_probabilities=False),
            )
        )
        triples = list(engine.execute(batch))
        assert triples[0][2].threshold == 0.0
        assert triples[1][2].threshold == 0.3
        assert triples[2][2].prob_kernel == "none"

    def test_empty_batch_streams_nothing(self, engines):
        assert list(engines["ic"].execute(BatchQuery())) == []

    def test_stream_refuses_to_continue_after_live_update(self, dataset):
        # The shared granule cache cannot see structural changes; a stream
        # interleaved with insert/delete must fail loudly, never serve
        # stale leaf lists.
        objects, domain, queries = dataset
        engine = QueryEngine.build(objects, domain, CONFIG.replace(backend="ic"))
        stream = engine.execute(BatchQuery.of(queries))
        next(stream)
        engine.delete(objects[0].oid)
        with pytest.raises(RuntimeError, match="structurally modified"):
            next(stream)


class TestSnapshotPlanning:
    def test_plans_respect_loaded_config(self, dataset, tmp_path):
        objects, domain, queries = dataset
        config = CONFIG.replace(backend="ic", prob_kernel="scalar")
        engine = QueryEngine.build(objects, domain, config)
        reference = engine.execute(PNNQuery(queries[0]))
        path = str(tmp_path / "planner.snap")
        engine.save(path)

        reopened = QueryEngine.open(path)
        plan = reopened.planner.plan(PNNQuery(queries[0]))
        assert plan.backend == "ic"
        assert plan.prob_kernel == "scalar"
        report = reopened.explain(PNNQuery(queries[0]))
        assert report.plan.prob_kernel == "scalar"
        assert report.result.answer_ids == reference.answer_ids
        for oid, p in reference.probabilities.items():
            assert report.result.probabilities[oid] == pytest.approx(p, abs=1e-12)

    def test_threshold_queries_on_reopened_engine(self, dataset, tmp_path):
        objects, domain, queries = dataset
        engine = QueryEngine.build(objects, domain, CONFIG.replace(backend="ic"))
        path = str(tmp_path / "tau.snap")
        engine.save(path)
        reopened = QueryEngine.open(path)
        full = reopened.execute(PNNQuery(queries[0]))
        filtered = reopened.execute(PNNQuery(queries[0], threshold=0.2))
        expected = [a for a in full.answers if a.probability >= 0.2]
        assert [(a.oid, a.probability) for a in filtered.answers] == pytest.approx(
            [(a.oid, a.probability) for a in expected]
        )


class TestDeprecations:
    def test_every_legacy_method_warns(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        with pytest.warns(DeprecationWarning):
            engine.pnn(queries[0])
        with pytest.warns(DeprecationWarning):
            engine.pnn_rtree(queries[0])
        with pytest.warns(DeprecationWarning):
            engine.knn(queries[0], 2, worlds=200)
        with pytest.warns(DeprecationWarning):
            engine.batch(queries[:2])
        with pytest.warns(DeprecationWarning):
            engine.partitions_in(Rect(0.0, 0.0, 1000.0, 1000.0))

    def test_execute_and_explain_do_not_warn(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.execute(PNNQuery(queries[0]))
            engine.explain(PNNQuery(queries[0]))
            list(engine.execute(BatchQuery.of(queries[:2])))
