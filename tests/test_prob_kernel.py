"""Vectorized qualification-probability kernel: parity, stability, caching.

The acceptance contract of the kernel (ISSUE 4): agree with the scalar
reference to <= 1e-9 relative error on all five backends, be bit-stable
under permutation of the candidates, pre-prune dominated candidates, and
share per-object ring profiles across queries through a ``RingCache``.
"""

import numpy as np
import pytest

from repro import (
    DiagramConfig,
    QueryEngine,
    generate_query_points,
    generate_uniform_objects,
)
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.queries.probability import qualification_probabilities
from repro.queries.probability_kernel import (
    RingCache,
    compute_qualification_probabilities,
    qualification_probabilities_vectorized,
)
from repro.uncertain.objects import UncertainObject
from repro.uncertain.pdf import TruncatedGaussianPdf


def random_cluster(rng, count, spread=30.0):
    """A mixed bag of pdf families, radii (incl. zero) and positions."""
    objects = []
    for i in range(count):
        center = Point(float(rng.uniform(0, spread)), float(rng.uniform(0, spread)))
        if rng.random() < 0.15:
            objects.append(UncertainObject.point_object(300 + i, center))
            continue
        radius = float(rng.uniform(0.5, 12.0))
        kind = int(rng.integers(0, 3))
        if kind == 0:
            objects.append(UncertainObject.uniform(300 + i, center, radius))
        elif kind == 1:
            objects.append(UncertainObject.gaussian(300 + i, center, radius))
        else:
            objects.append(
                UncertainObject(
                    300 + i,
                    Circle(center, radius),
                    TruncatedGaussianPdf(radius).to_histogram(20),
                )
            )
    return objects


def assert_close(scalar, vectorized, rel=1e-9):
    assert scalar.keys() == vectorized.keys()
    for oid, p in scalar.items():
        assert vectorized[oid] == pytest.approx(p, rel=rel, abs=rel)


class TestScalarVectorizedParity:
    @pytest.mark.parametrize("seed", range(15))
    def test_randomized_agreement(self, seed):
        """Hypothesis-style randomized parity over mixed pdf families."""
        rng = np.random.default_rng(seed)
        objects = random_cluster(rng, int(rng.integers(2, 10)))
        query = Point(float(rng.uniform(0, 30)), float(rng.uniform(0, 30)))
        assert_close(
            qualification_probabilities(objects, query),
            qualification_probabilities_vectorized(objects, query),
        )

    def test_single_candidate(self):
        only = UncertainObject.uniform(7, Point(1.0, 1.0), 2.0)
        assert qualification_probabilities_vectorized([only], Point(0, 0)) == {7: 1.0}
        assert qualification_probabilities_vectorized([], Point(0, 0)) == {}

    def test_overlapping_supports(self):
        a = UncertainObject.uniform(1, Point(2.0, 0.0), 3.0)
        b = UncertainObject.uniform(2, Point(4.0, 0.0), 3.0)
        query = Point(0.0, 0.0)
        probabilities = qualification_probabilities_vectorized([a, b], query)
        assert 0.0 < probabilities[1] < 1.0
        assert 0.0 < probabilities[2] < 1.0
        assert sum(probabilities.values()) == pytest.approx(1.0)
        assert_close(qualification_probabilities([a, b], query), probabilities)

    def test_disjoint_supports(self):
        near = UncertainObject.uniform(1, Point(2.0, 0.0), 1.0)   # dist in [1, 3]
        far = UncertainObject.uniform(2, Point(10.0, 0.0), 1.0)   # dist in [9, 11]
        query = Point(0.0, 0.0)
        probabilities = qualification_probabilities_vectorized([near, far], query)
        assert probabilities[1] == pytest.approx(1.0)
        assert probabilities[2] == pytest.approx(0.0)
        assert_close(qualification_probabilities([near, far], query), probabilities)

    def test_pre_pruned_candidate_gets_zero(self):
        """A candidate with distmin > global min distmax never builds rings."""
        near = UncertainObject.uniform(1, Point(2.0, 0.0), 1.0)       # distmax 3
        also = UncertainObject.uniform(2, Point(3.0, 0.0), 1.5)       # distmin 1.5
        hopeless = UncertainObject.uniform(3, Point(50.0, 0.0), 1.0)  # distmin 49
        query = Point(0.0, 0.0)
        cache = RingCache()
        probabilities = qualification_probabilities_vectorized(
            [near, also, hopeless], query, ring_cache=cache
        )
        assert probabilities[3] == 0.0
        assert sum(probabilities.values()) == pytest.approx(1.0)
        cached_oids = {key[0] for key in cache._profiles}
        assert 3 not in cached_oids  # pruned before any distribution was built
        assert_close(
            qualification_probabilities([near, also, hopeless], query), probabilities
        )

    def test_degenerate_dominance(self):
        dominator = UncertainObject.point_object(11, Point(3.0, 4.0))  # dist 5
        loser = UncertainObject.uniform(12, Point(30.0, 40.0), 45.0)   # distmin 5
        probabilities = qualification_probabilities_vectorized(
            [loser, dominator], Point(0.0, 0.0)
        )
        assert probabilities == {11: 1.0, 12: 0.0}

    def test_all_zero_integral_fallback(self, monkeypatch):
        """Zero raw integrals fall back to a uniform split over eligible oids.

        The vectorized kernel cannot reach the fallback through its normal
        flow (the minimum-distmax object always keeps mass at the upper
        boundary), so the shared helper is exercised directly -- and the
        scalar reference's reachable fallback is forced by stubbing out the
        distance cdf.
        """
        from repro.queries.probability_kernel import _uniform_fallback

        a = UncertainObject.uniform(1, Point(2.0, 0.0), 2.0)
        b = UncertainObject.uniform(2, Point(3.0, 0.0), 2.0)
        far = UncertainObject.uniform(3, Point(50.0, 0.0), 2.0)
        query = Point(0.0, 0.0)
        lowers = np.array([obj.min_distance(query) for obj in (a, b, far)])
        upper = min(obj.max_distance(query) for obj in (a, b, far))
        assert _uniform_fallback([a, b, far], lowers, upper) == {1: 0.5, 2: 0.5, 3: 0.0}

        import repro.queries.probability as scalar_module

        class ZeroCdf(scalar_module.DistanceDistribution):
            def cdf(self, r):
                return 0.0

        monkeypatch.setattr(scalar_module, "DistanceDistribution", ZeroCdf)
        assert qualification_probabilities([a, b, far], query) == {
            1: 0.5, 2: 0.5, 3: 0.0,
        }

    def test_dispatcher_rejects_unknown_kernel(self):
        objects = [UncertainObject.uniform(1, Point(1.0, 0.0), 1.0)]
        with pytest.raises(ValueError, match="unknown probability kernel"):
            compute_qualification_probabilities(objects, Point(0, 0), kernel="magic")


class TestBitStability:
    def test_bit_stable_under_permutation(self):
        """Exact float equality of the results for any candidate order."""
        rng = np.random.default_rng(5)
        objects = random_cluster(rng, 8)
        query = Point(15.0, 15.0)
        reference = qualification_probabilities_vectorized(objects, query)
        for seed in range(6):
            permuted = list(objects)
            np.random.default_rng(seed).shuffle(permuted)
            assert qualification_probabilities_vectorized(permuted, query) == reference

    def test_cache_does_not_change_results(self):
        rng = np.random.default_rng(6)
        objects = random_cluster(rng, 6)
        query = Point(12.0, 12.0)
        cache = RingCache()
        uncached = qualification_probabilities_vectorized(objects, query)
        first = qualification_probabilities_vectorized(objects, query, ring_cache=cache)
        second = qualification_probabilities_vectorized(objects, query, ring_cache=cache)
        assert first == uncached
        assert second == uncached
        assert cache.hits > 0


class TestRingCache:
    def test_hit_and_miss_accounting(self):
        cache = RingCache()
        obj = UncertainObject.uniform(9, Point(0, 0), 2.0)
        first = cache.get(obj, 48)
        again = cache.get(obj, 48)
        other_resolution = cache.get(obj, 16)
        assert cache.misses == 2 and cache.hits == 1
        assert first[0] is again[0]
        assert len(other_resolution[0]) == 16

    def test_invalidate_drops_all_resolutions(self):
        cache = RingCache()
        obj = UncertainObject.uniform(9, Point(0, 0), 2.0)
        cache.get(obj, 48)
        cache.get(obj, 16)
        cache.invalidate(9)
        assert len(cache) == 0


ENGINE_BACKENDS = ("ic", "icr", "basic", "rtree", "grid")


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def dataset(self):
        objects, domain = generate_uniform_objects(120, seed=3, diameter=300.0)
        queries = generate_query_points(6, domain, seed=77)
        return objects, domain, queries

    @pytest.mark.parametrize("backend", ENGINE_BACKENDS)
    def test_kernel_parity_on_all_backends(self, dataset, backend):
        """Vectorized and scalar kernels agree to <= 1e-9 on every backend."""
        objects, domain, queries = dataset
        engine = QueryEngine.build(
            objects,
            domain,
            DiagramConfig(
                backend=backend, page_capacity=16, seed_knn=60, rtree_fanout=16,
                grid_resolution=16,
            ),
        )
        assert engine.config.prob_kernel == "vectorized"
        for query in queries:
            vectorized = engine.pnn(query).probabilities
            engine.config = engine.config.replace(prob_kernel="scalar")
            scalar = engine.pnn(query).probabilities
            engine.config = engine.config.replace(prob_kernel="vectorized")
            assert_close(scalar, vectorized)

    def test_batch_shares_ring_profiles(self, dataset):
        objects, domain, queries = dataset
        engine = QueryEngine.build(
            objects, domain, DiagramConfig(page_capacity=16, seed_knn=60,
                                           rtree_fanout=16)
        )
        batch = engine.batch(list(queries) + list(queries))
        assert len(batch) == 2 * len(queries)
        # The duplicated workload must serve its second half from the cache.
        assert engine._ring_cache.hits >= engine._ring_cache.misses

    def test_live_updates_invalidate_ring_cache(self, dataset):
        objects, domain, queries = dataset
        engine = QueryEngine.build(
            objects, domain, DiagramConfig(page_capacity=16, seed_knn=60,
                                           rtree_fanout=16)
        )
        engine.pnn(queries[0])
        cached = {key[0] for key in engine._ring_cache._profiles}
        victim = next(iter(cached))
        engine.delete(victim)
        assert victim not in {key[0] for key in engine._ring_cache._profiles}

    def test_config_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown prob_kernel"):
            DiagramConfig(prob_kernel="magic")
