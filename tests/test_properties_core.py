"""Property-based tests for the UV-diagram core invariants.

These are the invariants the paper's correctness rests on:

* pruning (Lemmas 2 and 3) never discards a true r-object,
* the object's own uncertainty region always lies inside its UV-cell,
* every domain point is covered by at least one UV-cell,
* the UV-index point query never misses an answer object,
* qualification probabilities form a distribution.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cr_objects import CRObjectFinder
from repro.core.uv_cell import answer_objects_brute_force, build_all_uv_cells, build_exact_uv_cell
from repro.core.uv_index import UVIndex
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.queries.probability import qualification_probabilities
from repro.queries.verifier import min_max_prune
from repro.uncertain.objects import UncertainObject


DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


def objects_from_layout(layout):
    """Build objects from a list of (x, y, r) triples, skipping duplicates."""
    objects = []
    for i, (x, y, r) in enumerate(layout):
        objects.append(UncertainObject.uniform(i, Point(x, y), r))
    return objects


layout_strategy = st.lists(
    st.tuples(
        st.floats(min_value=50.0, max_value=950.0),
        st.floats(min_value=50.0, max_value=950.0),
        st.floats(min_value=1.0, max_value=45.0),
    ),
    min_size=2,
    max_size=8,
    unique_by=lambda t: (round(t[0], 1), round(t[1], 1)),
)

query_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=1000.0),
    st.floats(min_value=0.0, max_value=1000.0),
)


@settings(max_examples=20, deadline=None)
@given(layout_strategy, query_strategy)
def test_answer_set_never_empty_and_contains_global_minimiser(layout, query):
    objects = objects_from_layout(layout)
    q = Point(*query)
    answers = answer_objects_brute_force(objects, q)
    assert answers
    closest = min(objects, key=lambda o: o.max_distance(q))
    assert closest.oid in answers


@settings(max_examples=15, deadline=None)
@given(layout_strategy)
def test_own_region_inside_own_uv_cell(layout):
    objects = objects_from_layout(layout)
    cells = build_all_uv_cells(objects, DOMAIN, arc_samples=8)
    for obj in objects:
        cell = cells[obj.oid]
        assert cell.contains(obj.center)


@settings(max_examples=10, deadline=None)
@given(layout_strategy, query_strategy)
def test_uv_cells_cover_every_query_point(layout, query):
    objects = objects_from_layout(layout)
    cells = build_all_uv_cells(objects, DOMAIN, arc_samples=8)
    q = Point(*query)
    assert any(cell.contains(q) for cell in cells.values())


@settings(max_examples=10, deadline=None)
@given(layout_strategy)
def test_cr_objects_contain_r_objects(layout):
    objects = objects_from_layout(layout)
    finder = CRObjectFinder(objects, DOMAIN, seed_knn=len(objects))
    for owner in objects:
        result = finder.find(owner)
        cell = build_exact_uv_cell(
            owner, [o for o in objects if o.oid != owner.oid], DOMAIN, arc_samples=8
        )
        assert set(cell.r_objects) <= set(result.cr_objects)


@settings(max_examples=10, deadline=None)
@given(layout_strategy, st.lists(query_strategy, min_size=1, max_size=5))
def test_uv_index_point_query_never_misses_answers(layout, queries):
    objects = objects_from_layout(layout)
    finder = CRObjectFinder(objects, DOMAIN, seed_knn=len(objects))
    by_id = {o.oid: o for o in objects}
    index = UVIndex(DOMAIN, page_capacity=4)
    for obj in objects:
        result = finder.find(obj)
        index.insert(obj, [by_id[oid] for oid in result.cr_objects])
    for raw in queries:
        q = Point(*raw)
        _, entries, _ = index.point_query(q)
        listed = {e.oid for e in entries}
        assert set(answer_objects_brute_force(objects, q)) <= listed


@settings(max_examples=15, deadline=None)
@given(layout_strategy, query_strategy)
def test_min_max_prune_is_exact_filter(layout, query):
    objects = objects_from_layout(layout)
    q = Point(*query)
    survivors = min_max_prune(q, [(o.oid, o.mbc()) for o in objects])
    assert sorted(survivors) == answer_objects_brute_force(objects, q)


@settings(max_examples=10, deadline=None)
@given(layout_strategy, query_strategy)
def test_qualification_probabilities_form_distribution(layout, query):
    objects = objects_from_layout(layout)
    q = Point(*query)
    answer_ids = answer_objects_brute_force(objects, q)
    answers = [o for o in objects if o.oid in answer_ids]
    probs = qualification_probabilities(answers, q, steps=60, rings=24)
    assert sum(probs.values()) == pytest.approx(1.0, abs=1e-6)
    assert all(-1e-9 <= p <= 1.0 + 1e-9 for p in probs.values())


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=0, max_value=10_000),
    query_strategy,
)
def test_zero_radius_reduces_to_classic_voronoi(count, seed, query):
    """With zero-radius objects exactly one object answers every PNN (outside
    of ties), and it is the Euclidean nearest neighbour."""
    rng = np.random.default_rng(seed)
    objects = [
        UncertainObject.point_object(
            i, Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
        )
        for i in range(count)
    ]
    q = Point(*query)
    answers = answer_objects_brute_force(objects, q)
    nearest = min(objects, key=lambda o: o.center.distance_to(q))
    assert nearest.oid in answers
    # Ties are measure-zero; allow them but require the nearest to be listed.
    distances = sorted(o.center.distance_to(q) for o in objects)
    if len(distances) > 1 and distances[1] - distances[0] > 1e-9:
        assert answers == [nearest.oid]
