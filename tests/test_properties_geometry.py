"""Property-based tests (hypothesis) for the geometry kernel."""

import math

from hypothesis import given, settings, strategies as st

from repro.geometry.circle import Circle, min_bounding_circle
from repro.geometry.clipping import clip_polygon_by_constraint, clip_polygon_halfplane
from repro.geometry.hull import convex_hull, point_in_convex_hull
from repro.geometry.hyperbola import Hyperbola
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect


coords = st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False)
radii = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


@settings(max_examples=60, deadline=None)
@given(points, points)
def test_distance_symmetry(a, b):
    assert a.distance_to(b) == b.distance_to(a)


@settings(max_examples=60, deadline=None)
@given(points, points)
def test_distance_non_negative_and_identity(a, b):
    assert a.distance_to(b) >= 0.0
    assert a.distance_to(a) == 0.0


@settings(max_examples=60, deadline=None)
@given(points, points)
def test_midpoint_equidistant(a, b):
    mid = a.midpoint(b)
    assert math.isclose(mid.distance_to(a), mid.distance_to(b), abs_tol=1e-6)


@settings(max_examples=60, deadline=None)
@given(points, points, points)
def test_triangle_inequality(a, b, c):
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9


@settings(max_examples=50, deadline=None)
@given(points, radii, points)
def test_circle_min_max_distance_bracket_center_distance(center, radius, q):
    circle = Circle(center, radius)
    dist = center.distance_to(q)
    assert circle.min_distance(q) <= dist + 1e-9
    assert circle.max_distance(q) >= dist - 1e-9
    assert circle.max_distance(q) - circle.min_distance(q) <= 2 * radius + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(points, min_size=1, max_size=40))
def test_min_bounding_circle_covers_points(pts):
    circle = min_bounding_circle(pts)
    for p in pts:
        assert circle.contains_point(p, tol=1e-6)


@settings(max_examples=40, deadline=None)
@given(st.lists(points, min_size=3, max_size=40))
def test_convex_hull_contains_all_points(pts):
    hull = convex_hull(pts)
    for p in pts:
        assert point_in_convex_hull(p, hull, tol=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(points, min_size=3, max_size=12),
    st.floats(min_value=-1.0, max_value=1.0),
    st.floats(min_value=-1.0, max_value=1.0),
    st.floats(min_value=-500.0, max_value=500.0),
)
def test_halfplane_clip_never_grows(pts, a, b, c):
    polygon = Polygon(convex_hull(pts))
    clipped = clip_polygon_halfplane(polygon, a, b, c)
    assert clipped.area() <= polygon.area() + 1e-6
    for v in clipped.vertices:
        assert a * v.x + b * v.y + c <= 1e-6


@settings(max_examples=30, deadline=None)
@given(points, st.floats(min_value=10.0, max_value=300.0))
def test_constraint_clip_subset_of_original(center, radius):
    polygon = Polygon.from_rect(Rect(-400.0, -400.0, 400.0, 400.0))

    def constraint(p: Point) -> float:
        return radius - p.distance_to(center)  # remove inside of the circle

    clipped = clip_polygon_by_constraint(polygon, constraint, edge_samples=8)
    assert clipped.area() <= polygon.area() + 1e-6
    # Points that are clearly kept by the constraint and inside the original
    # polygon must remain inside the clipped polygon.
    for probe in polygon.bounding_rect().sample_grid(6):
        if constraint(probe) < -radius * 0.2 and polygon.contains_point(probe):
            assert clipped.contains_point(probe)


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=-200, max_value=200), st.floats(min_value=-200, max_value=200),
    st.floats(min_value=0.0, max_value=40.0),
    st.floats(min_value=-200, max_value=200), st.floats(min_value=-200, max_value=200),
    st.floats(min_value=0.0, max_value=40.0),
    st.floats(min_value=-300, max_value=300), st.floats(min_value=-300, max_value=300),
)
def test_uv_edge_membership_matches_distances(xi, yi, ri, xj, yj, rj, px, py):
    ci, cj, p = Point(xi, yi), Point(xj, yj), Point(px, py)
    edge = Hyperbola.uv_edge(ci, ri, cj, rj)
    dist_min_i = max(0.0, p.distance_to(ci) - ri)
    dist_max_j = p.distance_to(cj) + rj
    if edge is None:
        # Overlapping regions: the outside region is empty, i.e. no point can
        # make O_j certainly closer than O_i.
        assert ci.distance_to(cj) <= ri + rj + 1e-9
        assert dist_min_i <= dist_max_j + 1e-9
    else:
        assert edge.in_outside_region(p) == (dist_min_i > dist_max_j)


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.5, max_value=30.0),
    st.floats(min_value=0.5, max_value=30.0),
    st.floats(min_value=70.0, max_value=400.0),
    st.floats(min_value=-3.0, max_value=3.0),
)
def test_uv_edge_branch_points_satisfy_equation4(ri, rj, gap, t):
    """Points of the parametric branch satisfy dist(p,ci) - dist(p,cj) = ri + rj."""
    ci, cj = Point(0.0, 0.0), Point(gap, 0.0)
    edge = Hyperbola.uv_edge(ci, ri, cj, rj)
    assert edge is not None
    p = edge.point_at(t)
    assert math.isclose(p.distance_to(ci) - p.distance_to(cj), ri + rj, abs_tol=1e-6)
