"""Tests for verification and qualification-probability computation."""

import numpy as np
import pytest

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.queries.probability import (
    qualification_probabilities,
    qualification_probabilities_sampling,
)
from repro.queries.result import PNNAnswer, PNNResult
from repro.queries.verifier import d_minmax, min_max_prune
from repro.uncertain.objects import UncertainObject


class TestVerifier:
    def test_d_minmax(self):
        q = Point(0.0, 0.0)
        circles = [Circle(Point(10.0, 0.0), 2.0), Circle(Point(5.0, 0.0), 1.0)]
        assert d_minmax(q, circles) == pytest.approx(6.0)
        with pytest.raises(ValueError):
            d_minmax(q, [])

    def test_prune_removes_dominated_objects(self):
        q = Point(0.0, 0.0)
        candidates = [
            (1, Circle(Point(3.0, 0.0), 1.0)),    # max dist 4
            (2, Circle(Point(10.0, 0.0), 1.0)),   # min dist 9 > 4 -> pruned
            (3, Circle(Point(4.0, 0.0), 1.5)),    # min dist 2.5 <= 4 -> kept
        ]
        assert min_max_prune(q, candidates) == [1, 3]

    def test_prune_keeps_all_overlapping_candidates(self):
        q = Point(0.0, 0.0)
        candidates = [
            (i, Circle(Point(2.0 + 0.1 * i, 0.0), 3.0)) for i in range(5)
        ]
        assert min_max_prune(q, candidates) == [0, 1, 2, 3, 4]

    def test_prune_empty(self):
        assert min_max_prune(Point(0, 0), []) == []

    def test_answer_object_semantics(self):
        """Surviving the filter is exactly the answer-object condition."""
        rng = np.random.default_rng(4)
        objects = [
            UncertainObject.uniform(
                i, Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))), 8.0
            )
            for i in range(30)
        ]
        q = Point(50.0, 50.0)
        survivors = min_max_prune(q, [(o.oid, o.mbc()) for o in objects])
        bound = min(o.max_distance(q) for o in objects)
        expected = [o.oid for o in objects if o.min_distance(q) <= bound + 1e-12]
        assert survivors == expected


class TestQualificationProbabilities:
    def test_empty_and_singleton(self):
        assert qualification_probabilities([], Point(0, 0)) == {}
        only = UncertainObject.uniform(7, Point(1.0, 1.0), 2.0)
        assert qualification_probabilities([only], Point(0, 0)) == {7: 1.0}

    def test_probabilities_sum_to_one(self):
        objects = [
            UncertainObject.gaussian(0, Point(0.0, 0.0), 3.0),
            UncertainObject.gaussian(1, Point(4.0, 0.0), 3.0),
            UncertainObject.gaussian(2, Point(0.0, 5.0), 3.0),
        ]
        probs = qualification_probabilities(objects, Point(1.0, 1.0))
        assert sum(probs.values()) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 for p in probs.values())

    def test_closer_object_more_probable(self):
        near = UncertainObject.uniform(0, Point(1.0, 0.0), 2.0)
        far = UncertainObject.uniform(1, Point(6.0, 0.0), 2.0)
        probs = qualification_probabilities([near, far], Point(0.0, 0.0))
        assert probs[0] > probs[1]

    def test_symmetric_objects_get_equal_probability(self):
        a = UncertainObject.uniform(0, Point(-3.0, 0.0), 2.0)
        b = UncertainObject.uniform(1, Point(3.0, 0.0), 2.0)
        probs = qualification_probabilities([a, b], Point(0.0, 0.0))
        assert probs[0] == pytest.approx(probs[1], abs=0.02)

    def test_dominating_object_gets_everything(self):
        near = UncertainObject.uniform(0, Point(0.5, 0.0), 0.5)
        far = UncertainObject.uniform(1, Point(50.0, 0.0), 0.5)
        probs = qualification_probabilities([near, far], Point(0.0, 0.0))
        assert probs[0] == pytest.approx(1.0)
        assert probs[1] == pytest.approx(0.0)

    def test_degenerate_dominance_compares_oids_by_value(self):
        """Regression: the dominance branch must use ``==`` on oids, not ``is``.

        CPython only interns small ints, so equal oids >= 257 held by
        distinct int objects fail an identity check.  With ``is``, a
        duplicate reference to the winner (e.g. the same object surfacing
        twice from overlapping index entries) overwrote the winner's 1.0
        with 0.0 in the result dict, losing all probability mass.
        """
        winner_oid_a = int("300")  # fresh, non-interned int objects
        winner_oid_b = int("300")
        assert winner_oid_a == winner_oid_b
        # Point object at distance 5 -> distmin = distmax = 5; the far
        # object has distmin 5, so min distmax <= min distmin (degenerate).
        winner = UncertainObject.point_object(winner_oid_a, Point(3.0, 4.0))
        duplicate = UncertainObject.point_object(winner_oid_b, Point(3.0, 4.0))
        far = UncertainObject.uniform(int("400"), Point(30.0, 40.0), 45.0)
        probs = qualification_probabilities([winner, duplicate, far], Point(0.0, 0.0))
        assert probs[300] == 1.0
        assert probs[400] == 0.0

    def test_integration_agrees_with_sampling(self):
        rng = np.random.default_rng(9)
        objects = [
            UncertainObject.gaussian(
                i, Point(float(rng.uniform(0, 40)), float(rng.uniform(0, 40))), 15.0
            )
            for i in range(4)
        ]
        q = Point(20.0, 20.0)
        integrated = qualification_probabilities(objects, q, steps=200, rings=64)
        sampled = qualification_probabilities_sampling(
            objects, q, worlds=20000, rng=np.random.default_rng(17)
        )
        for oid in integrated:
            assert integrated[oid] == pytest.approx(sampled[oid], abs=0.05)


class TestResultContainers:
    def test_answer_validation(self):
        with pytest.raises(ValueError):
            PNNAnswer(oid=1, probability=1.5)

    def test_result_accessors(self):
        result = PNNResult(
            query=Point(0, 0),
            answers=[PNNAnswer(1, 0.25), PNNAnswer(2, 0.75)],
            candidates_examined=5,
        )
        assert result.answer_ids == [1, 2]
        assert result.probabilities == {1: 0.25, 2: 0.75}
        assert result.total_probability() == pytest.approx(1.0)
        assert result.sorted_by_probability()[0].oid == 2
        assert result.top().oid == 1  # insertion order; use sorted for ranking

    def test_empty_result(self):
        result = PNNResult(query=Point(0, 0))
        assert result.top() is None
        assert result.total_probability() == 0.0
