"""Tests for probabilistic k-NN queries (the k-PNN extension)."""

import numpy as np
import pytest

from repro.queries.knn import (
    ProbabilisticKNN,
    knn_answer_objects_brute_force,
    kth_min_max_distance,
)
from repro.core.uv_cell import answer_objects_brute_force
from repro.geometry.point import Point
from repro.rtree.tree import RTree
from repro.uncertain.objects import UncertainObject


def make_objects(count, seed=0, radius=30.0, extent=1000.0):
    rng = np.random.default_rng(seed)
    return [
        UncertainObject.gaussian(
            i,
            Point(float(rng.uniform(radius, extent - radius)),
                  float(rng.uniform(radius, extent - radius))),
            radius,
        )
        for i in range(count)
    ]


class TestBruteForceSemantics:
    def test_k1_reduces_to_pnn(self):
        objects = make_objects(50, seed=1)
        q = Point(400.0, 600.0)
        assert knn_answer_objects_brute_force(objects, q, 1) == answer_objects_brute_force(
            objects, q
        )

    def test_answer_sets_grow_with_k(self):
        objects = make_objects(50, seed=2)
        q = Point(500.0, 500.0)
        previous = set()
        for k in (1, 2, 4, 8):
            current = set(knn_answer_objects_brute_force(objects, q, k))
            assert previous <= current
            previous = current

    def test_k_larger_than_dataset(self):
        objects = make_objects(5, seed=3)
        q = Point(0.0, 0.0)
        assert knn_answer_objects_brute_force(objects, q, 50) == sorted(
            o.oid for o in objects
        )

    def test_kth_min_max_distance_validation(self):
        objects = make_objects(5, seed=4)
        with pytest.raises(ValueError):
            kth_min_max_distance(objects, Point(0, 0), 0)


class TestCandidateRetrieval:
    def test_matches_brute_force(self):
        objects = make_objects(80, seed=5)
        tree = RTree.bulk_load(objects, fanout=8)
        knn = ProbabilisticKNN(tree, objects)
        rng = np.random.default_rng(9)
        for _ in range(10):
            q = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            for k in (1, 3, 5):
                got = knn.retrieve_candidates(q, k)
                assert got == knn_answer_objects_brute_force(objects, q, k)

    def test_invalid_k(self):
        objects = make_objects(10, seed=6)
        knn = ProbabilisticKNN(RTree.bulk_load(objects, fanout=8), objects)
        with pytest.raises(ValueError):
            knn.retrieve_candidates(Point(0, 0), 0)


class TestProbabilities:
    def test_probabilities_sum_to_k(self):
        objects = make_objects(30, seed=7, radius=60.0)
        knn = ProbabilisticKNN(RTree.bulk_load(objects, fanout=8), objects)
        q = Point(500.0, 500.0)
        k = 3
        result = knn.query(q, k, worlds=3000)
        # In every possible world exactly k candidates are in the top-k, so
        # the probabilities must sum to k.
        assert result.expected_in_top_k() == pytest.approx(k, abs=0.05)
        assert all(0.0 < a.probability <= 1.0 for a in result.answers)

    def test_answers_sorted_by_probability(self):
        objects = make_objects(40, seed=8, radius=50.0)
        knn = ProbabilisticKNN(RTree.bulk_load(objects, fanout=8), objects)
        result = knn.query(Point(300.0, 300.0), 2, worlds=1500)
        probabilities = [a.probability for a in result.answers]
        assert probabilities == sorted(probabilities, reverse=True)
        assert result.top(1)[0].probability == probabilities[0]

    def test_k1_probabilities_match_integration(self):
        objects = make_objects(25, seed=9, radius=60.0)
        knn = ProbabilisticKNN(RTree.bulk_load(objects, fanout=8), objects)
        q = Point(450.0, 550.0)
        result = knn.query(q, 1, worlds=20000, rng=np.random.default_rng(4))
        from repro.queries.probability import qualification_probabilities

        answers = [o for o in objects if o.oid in result.answer_ids]
        integrated = qualification_probabilities(answers, q)
        for answer in result.answers:
            assert answer.probability == pytest.approx(integrated[answer.oid], abs=0.05)

    def test_empty_dataset(self):
        knn = ProbabilisticKNN(RTree.bulk_load([], fanout=8), [])
        result = knn.query(Point(0, 0), 3)
        assert result.answers == []
        assert result.answer_ids == []
