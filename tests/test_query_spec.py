"""Query descriptors (repro.queries.spec) and DiagramConfig.replace()."""

import dataclasses

import pytest

from repro import DiagramConfig, Point, Rect
from repro.queries.spec import BatchQuery, KNNQuery, PNNQuery, RangeQuery


class TestPNNQuery:
    def test_defaults(self):
        q = PNNQuery(Point(1.0, 2.0))
        assert q.threshold == 0.0
        assert q.top_k is None
        assert q.compute_probabilities is True

    def test_is_frozen(self):
        q = PNNQuery(Point(1.0, 2.0))
        with pytest.raises(dataclasses.FrozenInstanceError):
            q.threshold = 0.5

    @pytest.mark.parametrize("threshold", [-0.1, 1.5, 2.0])
    def test_threshold_out_of_range(self, threshold):
        with pytest.raises(ValueError, match="threshold"):
            PNNQuery(Point(0.0, 0.0), threshold=threshold)

    @pytest.mark.parametrize("threshold", [0.0, 0.5, 1.0])
    def test_threshold_boundaries_accepted(self, threshold):
        assert PNNQuery(Point(0.0, 0.0), threshold=threshold).threshold == threshold

    @pytest.mark.parametrize("top_k", [0, -3])
    def test_top_k_must_be_positive(self, top_k):
        with pytest.raises(ValueError, match="top_k"):
            PNNQuery(Point(0.0, 0.0), top_k=top_k)

    def test_filters_require_probabilities(self):
        with pytest.raises(ValueError, match="compute_probabilities"):
            PNNQuery(Point(0.0, 0.0), threshold=0.2, compute_probabilities=False)
        with pytest.raises(ValueError, match="compute_probabilities"):
            PNNQuery(Point(0.0, 0.0), top_k=3, compute_probabilities=False)

    def test_answer_set_only_without_filters_is_fine(self):
        q = PNNQuery(Point(0.0, 0.0), compute_probabilities=False)
        assert not q.compute_probabilities


class TestKNNQuery:
    def test_validation(self):
        with pytest.raises(ValueError, match="k must be positive"):
            KNNQuery(Point(0.0, 0.0), k=0)
        with pytest.raises(ValueError, match="worlds"):
            KNNQuery(Point(0.0, 0.0), k=2, worlds=0)

    def test_defaults(self):
        q = KNNQuery(Point(0.0, 0.0), k=3)
        assert q.worlds == 2000
        assert q.seed is None


class TestRangeQuery:
    def test_valid_region(self):
        q = RangeQuery(Rect(0.0, 0.0, 10.0, 10.0))
        assert q.region.area() == 100.0

    def test_degenerate_region_rejected(self):
        # Rect itself validates its corners; the descriptor re-checks in case
        # a malformed rectangle-like object sneaks through.
        with pytest.raises(ValueError, match="malformed|degenerate"):
            RangeQuery(Rect(10.0, 0.0, 0.0, 10.0))


class TestBatchQuery:
    def test_points_are_promoted(self):
        batch = BatchQuery(queries=(Point(1.0, 2.0), PNNQuery(Point(3.0, 4.0))))
        assert all(isinstance(q, PNNQuery) for q in batch.queries)
        assert batch.queries[0].point == Point(1.0, 2.0)
        assert len(batch) == 2

    def test_of_applies_shared_parameters(self):
        batch = BatchQuery.of([Point(0.0, 0.0), Point(1.0, 1.0)], threshold=0.25,
                              top_k=2)
        assert all(q.threshold == 0.25 and q.top_k == 2 for q in batch)

    def test_of_keeps_explicit_descriptors(self):
        explicit = PNNQuery(Point(9.0, 9.0), threshold=0.7)
        batch = BatchQuery.of([explicit, Point(0.0, 0.0)], threshold=0.1)
        assert batch.queries[0].threshold == 0.7
        assert batch.queries[1].threshold == 0.1

    def test_invalid_member_rejected(self):
        with pytest.raises(TypeError):
            BatchQuery(queries=("not a query",))

    def test_empty_batch(self):
        assert len(BatchQuery()) == 0


class TestDiagramConfigReplace:
    def test_replace_changes_field(self):
        config = DiagramConfig()
        assert config.replace(backend="grid").backend == "grid"
        # the original is untouched (frozen semantics)
        assert config.backend == "ic"

    def test_unknown_field_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="unknown DiagramConfig field"):
            DiagramConfig().replace(bogus_knob=1)

    def test_unknown_field_error_names_known_fields(self):
        with pytest.raises(ValueError, match="backend"):
            DiagramConfig().replace(bogus_knob=1)

    def test_validation_reruns_on_replace(self):
        config = DiagramConfig()
        with pytest.raises(ValueError, match="workers"):
            config.replace(workers=0)
        with pytest.raises(ValueError, match="split_threshold"):
            config.replace(split_threshold=2.0)
        with pytest.raises(ValueError, match="store"):
            config.replace(store="file")  # file store needs a store_path

    def test_replace_validates_combinations(self):
        # valid combination passes validation on the new instance
        replaced = DiagramConfig().replace(store="file", store_path="/tmp/x.snap")
        assert replaced.store == "file"
