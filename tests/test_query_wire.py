"""Wire serialization of query descriptors and result types.

The serving layer's contract is that any descriptor (and any result) can be
pushed through ``to_dict`` -> ``json.dumps`` -> ``json.loads`` ->
``from_dict`` and come back equal.  Property-based tests generate the
descriptor space; example-based tests pin the wire format itself (key names
are API).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiagramConfig, Point, QueryEngine, Rect
from repro.queries.knn import KNNAnswer, KNNResult
from repro.queries.result import PNNAnswer, PNNResult
from repro.queries.spec import (
    QUERY_TYPES,
    BatchQuery,
    KNNQuery,
    PNNQuery,
    RangeQuery,
    query_from_dict,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, finite, finite)

pnn_queries = st.builds(
    PNNQuery,
    point=points,
    threshold=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    top_k=st.one_of(st.none(), st.integers(min_value=1, max_value=50)),
)

knn_queries = st.builds(
    KNNQuery,
    point=points,
    k=st.integers(min_value=1, max_value=20),
    worlds=st.integers(min_value=1, max_value=5000),
    seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
)


@st.composite
def range_queries(draw):
    xmin, ymin = draw(finite), draw(finite)
    return RangeQuery(
        region=Rect(
            xmin, ymin,
            xmin + draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False)),
            ymin + draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False)),
        )
    )


batch_queries = st.builds(
    BatchQuery, queries=st.lists(pnn_queries, max_size=6).map(tuple)
)

any_query = st.one_of(pnn_queries, knn_queries, range_queries(), batch_queries)


class TestDescriptorRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(any_query)
    def test_json_round_trip_is_identity(self, query):
        wire = json.loads(json.dumps(query.to_dict()))
        assert query_from_dict(wire) == query

    @settings(max_examples=100, deadline=None)
    @given(any_query)
    def test_type_discriminator_matches_registry(self, query):
        state = query.to_dict()
        assert QUERY_TYPES[state["type"]] is type(query)

    def test_wire_keys_are_stable(self):
        # Key names are the HTTP API; renames would silently break clients.
        assert set(PNNQuery(Point(1, 2)).to_dict()) == {
            "type", "point", "threshold", "top_k", "compute_probabilities",
        }
        assert set(KNNQuery(Point(1, 2), k=3).to_dict()) == {
            "type", "point", "k", "worlds", "seed",
        }
        assert set(RangeQuery(Rect(0, 0, 1, 1)).to_dict()) == {"type", "region"}
        assert set(BatchQuery.of([Point(1, 2)]).to_dict()) == {"type", "queries"}

    def test_defaults_are_optional_on_the_wire(self):
        query = query_from_dict({"type": "pnn", "point": [3.0, 4.0]})
        assert query == PNNQuery(Point(3.0, 4.0))
        query = query_from_dict({"type": "knn", "point": [3.0, 4.0], "k": 2})
        assert query == KNNQuery(Point(3.0, 4.0), k=2)

    def test_unknown_type_is_rejected(self):
        with pytest.raises(ValueError, match="unknown query type"):
            query_from_dict({"type": "voronoi", "point": [0.0, 0.0]})
        with pytest.raises(TypeError):
            query_from_dict([1, 2, 3])

    def test_malformed_payloads_are_rejected(self):
        with pytest.raises(ValueError):
            query_from_dict({"type": "pnn", "point": [1.0]})
        with pytest.raises(KeyError):
            query_from_dict({"type": "knn", "point": [1.0, 2.0]})  # no k
        with pytest.raises(ValueError):
            query_from_dict({"type": "range", "region": [0.0, 0.0, 1.0]})
        with pytest.raises(ValueError):
            query_from_dict({"type": "pnn", "point": [1.0, 2.0],
                             "threshold": 1.5})


class TestAnswerRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_pnn_answer(self, oid, probability):
        answer = PNNAnswer(oid=oid, probability=probability)
        assert PNNAnswer.from_dict(
            json.loads(json.dumps(answer.to_dict()))
        ) == answer

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_knn_answer(self, oid, probability):
        answer = KNNAnswer(oid=oid, probability=probability)
        assert KNNAnswer.from_dict(
            json.loads(json.dumps(answer.to_dict()))
        ) == answer


@pytest.fixture(scope="module")
def wire_engine(medium_dataset):
    objects, domain = medium_dataset
    return QueryEngine.build(
        objects, domain, DiagramConfig(backend="ic", buffer_pages=16)
    )


class TestResultRoundTrip:
    """Executed results survive the wire (what workers actually send)."""

    def test_pnn_result(self, wire_engine, medium_queries):
        for point in medium_queries[:5]:
            result = wire_engine.execute(PNNQuery(point, threshold=0.05))
            wire = json.loads(json.dumps(result.to_dict()))
            restored = PNNResult.from_dict(wire)
            assert restored.query == result.query
            assert restored.answers == result.answers
            assert restored.io == result.io
            assert restored.refinement == result.refinement
            assert restored.threshold == result.threshold

    def test_knn_result(self, wire_engine, medium_queries):
        result = wire_engine.execute(
            KNNQuery(medium_queries[0], k=3, worlds=50, seed=7)
        )
        wire = json.loads(json.dumps(result.to_dict()))
        restored = KNNResult.from_dict(wire)
        assert restored.query == result.query
        assert restored.k == result.k
        assert restored.answers == result.answers

    def test_range_result(self, wire_engine):
        from repro.core.pattern import PartitionQueryResult

        domain = wire_engine.domain
        result = wire_engine.execute(RangeQuery(
            Rect(domain.xmin, domain.ymin,
                 domain.xmin + domain.width / 2,
                 domain.ymin + domain.height / 2)
        ))
        wire = json.loads(json.dumps(result.to_dict()))
        restored = PartitionQueryResult.from_dict(wire)
        assert restored.partitions == result.partitions
        assert restored.io == result.io
