"""``QueryEngine.open(..., readonly=True)``: the serving-mode write guard.

A readonly engine answers every query exactly like a writable one but
rejects structural mutation (insert / delete) with a clear error.  This is
the correctness contract of :mod:`repro.serve`: N worker processes share one
snapshot and must keep answering bit-identically, which only holds while
none of them mutates its in-memory overlay.
"""

from __future__ import annotations

import pytest

from repro import DiagramConfig, Point, QueryEngine, ReadOnlyEngineError, UncertainObject
from repro.queries.spec import BatchQuery, KNNQuery, PNNQuery, RangeQuery


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory, medium_dataset):
    objects, domain = medium_dataset
    engine = QueryEngine.build(
        objects, domain, DiagramConfig(backend="ic", buffer_pages=16)
    )
    path = str(tmp_path_factory.mktemp("readonly") / "engine.snap")
    engine.save(path)
    return path


class TestReadOnlyMode:
    def test_open_defaults_to_writable(self, snapshot):
        engine = QueryEngine.open(snapshot)
        assert engine.readonly is False
        # The regression half of the contract: a default open still accepts
        # live updates exactly as before the readonly flag existed.
        new_object = UncertainObject.gaussian(
            99991, Point(engine.domain.xmin + 1.0, engine.domain.ymin + 1.0), 5.0
        )
        engine.insert(new_object)
        assert 99991 in {obj.oid for obj in engine.objects}
        engine.delete(99991)
        assert 99991 not in {obj.oid for obj in engine.objects}

    def test_built_engine_is_writable(self, medium_dataset):
        objects, domain = medium_dataset
        engine = QueryEngine.build(objects[:20], domain, DiagramConfig(backend="ic"))
        assert engine.readonly is False

    def test_readonly_rejects_insert(self, snapshot):
        engine = QueryEngine.open(snapshot, readonly=True)
        assert engine.readonly is True
        new_object = UncertainObject.gaussian(99992, Point(10.0, 10.0), 5.0)
        with pytest.raises(ReadOnlyEngineError, match="read-only"):
            engine.insert(new_object)
        assert 99992 not in {obj.oid for obj in engine.objects}

    def test_readonly_rejects_delete(self, snapshot):
        engine = QueryEngine.open(snapshot, readonly=True)
        victim = engine.objects[0].oid
        with pytest.raises(ReadOnlyEngineError, match="read-only"):
            engine.delete(victim)
        assert victim in {obj.oid for obj in engine.objects}

    def test_error_names_the_operation(self, snapshot):
        engine = QueryEngine.open(snapshot, readonly=True)
        with pytest.raises(ReadOnlyEngineError, match="insert"):
            engine.insert(UncertainObject.gaussian(5, Point(1.0, 1.0), 2.0))
        with pytest.raises(ReadOnlyEngineError, match="delete"):
            engine.delete(0)

    def test_readonly_error_is_a_runtime_error(self):
        assert issubclass(ReadOnlyEngineError, RuntimeError)

    @pytest.mark.parametrize("store", ["file", "mmap", "memory"])
    def test_readonly_answers_match_writable(self, snapshot, medium_queries, store):
        writable = QueryEngine.open(snapshot, store=store)
        readonly = QueryEngine.open(snapshot, store=store, readonly=True)
        for point in medium_queries[:5]:
            expected = writable.execute(PNNQuery(point, threshold=0.1))
            actual = readonly.execute(PNNQuery(point, threshold=0.1))
            assert actual.answers == expected.answers
            assert actual.io == expected.io

    def test_readonly_supports_every_query_family(self, snapshot, medium_queries):
        engine = QueryEngine.open(snapshot, store="mmap", readonly=True)
        domain = engine.domain
        engine.execute(PNNQuery(medium_queries[0]))
        engine.execute(KNNQuery(medium_queries[0], k=2, worlds=20, seed=3))
        engine.execute(RangeQuery(domain))
        list(engine.execute(BatchQuery.of(medium_queries[:3])))

    def test_readonly_survives_wire_round_trip_queries(self, snapshot):
        from repro.queries.spec import query_from_dict

        engine = QueryEngine.open(snapshot, store="mmap", readonly=True)
        result = engine.execute(query_from_dict(
            {"type": "pnn", "point": [500.0, 500.0], "threshold": 0.05}
        ))
        assert result.to_dict()["type"] == "pnn_result"
