"""Unit tests for the R-tree substrate (bulk load, insertion, range, k-NN)."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.uncertain.objects import UncertainObject


def make_objects(count, seed=0, radius=5.0, extent=1000.0):
    rng = np.random.default_rng(seed)
    return [
        UncertainObject.uniform(
            i,
            Point(float(rng.uniform(radius, extent - radius)),
                  float(rng.uniform(radius, extent - radius))),
            radius,
        )
        for i in range(count)
    ]


class TestBulkLoad:
    def test_all_objects_present(self):
        objects = make_objects(120)
        tree = RTree.bulk_load(objects, fanout=10)
        assert tree.size == 120
        assert sorted(tree.all_object_ids()) == list(range(120))

    def test_tree_height_grows_with_size(self):
        small = RTree.bulk_load(make_objects(8), fanout=10)
        large = RTree.bulk_load(make_objects(500), fanout=10)
        assert small.height <= large.height
        assert large.height >= 3

    def test_leaf_mbrs_cover_objects(self):
        objects = make_objects(50)
        tree = RTree.bulk_load(objects, fanout=8)
        root_mbr = tree.root.mbr()
        for obj in objects:
            assert root_mbr.contains_rect(obj.mbr())

    def test_empty_bulk_load(self):
        tree = RTree.bulk_load([])
        assert tree.size == 0
        assert tree.all_object_ids() == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RTree(fanout=2)
        with pytest.raises(ValueError):
            RTree(fill_factor=0.1)


class TestDynamicInsert:
    def test_insert_then_query(self):
        tree = RTree(fanout=4)
        objects = make_objects(60, seed=3)
        for obj in objects:
            tree.insert(obj)
        assert tree.size == 60
        assert sorted(tree.all_object_ids()) == list(range(60))

    def test_insert_matches_brute_force_range(self):
        tree = RTree(fanout=5)
        objects = make_objects(80, seed=4)
        for obj in objects:
            tree.insert(obj)
        window = Rect(200.0, 200.0, 500.0, 600.0)
        expected = sorted(o.oid for o in objects if o.mbr().intersects(window))
        assert sorted(tree.range_query(window)) == expected


class TestRangeQueries:
    def test_window_query_matches_brute_force(self):
        objects = make_objects(200, seed=1)
        tree = RTree.bulk_load(objects, fanout=12)
        for window in (Rect(0, 0, 250, 250), Rect(400, 100, 900, 500), Rect(990, 990, 1000, 1000)):
            expected = sorted(o.oid for o in objects if o.mbr().intersects(window))
            assert sorted(tree.range_query(window)) == expected

    def test_circular_range_matches_brute_force(self):
        objects = make_objects(200, seed=2)
        tree = RTree.bulk_load(objects, fanout=12)
        center = Point(500.0, 500.0)
        radius = 220.0
        expected = sorted(
            o.oid
            for o in objects
            if o.mbr().min_distance_to_point(center) <= radius
        )
        assert sorted(tree.circular_range_query(center, radius)) == expected

    def test_circular_range_with_center_filter(self):
        objects = make_objects(100, seed=5)
        tree = RTree.bulk_load(objects, fanout=12)
        center = Point(500.0, 500.0)
        radius = 300.0

        def only_centers_inside(oid, mbr):
            return center.distance_to(mbr.center) <= radius

        result = tree.circular_range_query(center, radius, center_filter=only_centers_inside)
        expected = sorted(
            o.oid for o in objects if center.distance_to(o.center) <= radius
        )
        assert sorted(result) == expected


class TestKnn:
    def test_knn_matches_brute_force(self):
        objects = make_objects(150, seed=7)
        tree = RTree.bulk_load(objects, fanout=10)
        query = Point(321.0, 654.0)
        got = tree.knn(query, 10)
        expected = sorted(objects, key=lambda o: o.mbr().min_distance_to_point(query))[:10]
        assert [oid for oid, _ in got] and len(got) == 10
        got_dists = [d for _, d in got]
        expected_dists = [o.mbr().min_distance_to_point(query) for o in expected]
        assert got_dists == pytest.approx(expected_dists)

    def test_knn_k_larger_than_dataset(self):
        objects = make_objects(5)
        tree = RTree.bulk_load(objects, fanout=10)
        assert len(tree.knn(Point(0, 0), 50)) == 5

    def test_knn_zero(self):
        tree = RTree.bulk_load(make_objects(5))
        assert tree.knn(Point(0, 0), 0) == []

    def test_knn_results_sorted(self):
        objects = make_objects(60, seed=9)
        tree = RTree.bulk_load(objects, fanout=8)
        got = tree.knn(Point(10.0, 10.0), 15)
        dists = [d for _, d in got]
        assert dists == sorted(dists)


class TestIOAccounting:
    def test_leaf_reads_counted(self):
        disk = DiskManager()
        objects = make_objects(300, seed=11)
        tree = RTree.bulk_load(objects, disk=disk, fanout=10)
        disk.reset_stats()
        tree.range_query(Rect(0, 0, 1000, 1000))
        # A full scan must read every leaf exactly once.
        _, leaves = tree.node_count()
        assert disk.stats.page_reads == leaves

    def test_point_ish_query_reads_few_leaves(self):
        disk = DiskManager()
        objects = make_objects(300, seed=12)
        tree = RTree.bulk_load(objects, disk=disk, fanout=10)
        disk.reset_stats()
        tree.range_query(Rect(500, 500, 501, 501))
        _, leaves = tree.node_count()
        assert disk.stats.page_reads < leaves
