"""Tests for the branch-and-prune PNN baseline over the R-tree."""

import numpy as np
import pytest

from repro.core.uv_cell import answer_objects_brute_force
from repro.geometry.point import Point
from repro.rtree.pnn import RTreePNN, _mbr_to_mbc
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore
from repro.uncertain.objects import UncertainObject


def make_objects(count, seed=0, radius=30.0, extent=1000.0):
    rng = np.random.default_rng(seed)
    return [
        UncertainObject.gaussian(
            i,
            Point(float(rng.uniform(radius, extent - radius)),
                  float(rng.uniform(radius, extent - radius))),
            radius,
        )
        for i in range(count)
    ]


class TestMbrToMbc:
    def test_roundtrip_through_mbr(self):
        obj = UncertainObject.uniform(1, Point(10.0, 20.0), 7.5)
        mbc = _mbr_to_mbc(obj.mbr())
        assert mbc.center.is_close(obj.center)
        assert mbc.radius == pytest.approx(obj.radius)


class TestCandidateRetrieval:
    def test_candidates_superset_of_answers(self):
        objects = make_objects(100, seed=1)
        tree = RTree.bulk_load(objects, fanout=8)
        pnn = RTreePNN(tree, objects=objects)
        query = Point(400.0, 400.0)
        candidate_ids = {oid for oid, _ in pnn.retrieve_candidates(query)}
        expected = set(answer_objects_brute_force(objects, query))
        assert expected <= candidate_ids

    def test_answer_set_matches_brute_force(self):
        objects = make_objects(120, seed=2)
        tree = RTree.bulk_load(objects, fanout=8)
        pnn = RTreePNN(tree, objects=objects)
        rng = np.random.default_rng(0)
        for _ in range(15):
            q = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            result = pnn.query(q, compute_probabilities=False)
            assert sorted(result.answer_ids) == answer_objects_brute_force(objects, q)


class TestFullQuery:
    def test_probabilities_sum_to_one(self):
        objects = make_objects(60, seed=3, radius=60.0)
        tree = RTree.bulk_load(objects, fanout=8)
        pnn = RTreePNN(tree, objects=objects)
        result = pnn.query(Point(500.0, 500.0))
        assert result.answers
        assert result.total_probability() == pytest.approx(1.0, abs=1e-6)
        assert result.answers == result.sorted_by_probability()

    def test_io_and_timing_recorded(self):
        disk = DiskManager()
        objects = make_objects(150, seed=4)
        store = ObjectStore(disk)
        store.bulk_load(objects)
        tree = RTree.bulk_load(objects, disk=disk, fanout=8)
        pnn = RTreePNN(tree, object_store=store)
        result = pnn.query(Point(250.0, 750.0))
        assert result.io is not None
        assert result.io.page_reads > 0
        assert result.timing is not None
        assert set(result.timing.buckets) == {"index", "object_retrieval", "probability"}

    def test_requires_store_or_objects(self):
        tree = RTree.bulk_load(make_objects(5))
        with pytest.raises(ValueError):
            RTreePNN(tree)

    def test_single_object_dataset(self):
        objects = make_objects(1, seed=5)
        tree = RTree.bulk_load(objects, fanout=8)
        pnn = RTreePNN(tree, objects=objects)
        result = pnn.query(Point(10.0, 10.0))
        assert result.answer_ids == [0]
        assert result.answers[0].probability == pytest.approx(1.0)
