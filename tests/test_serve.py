"""The serving layer: config, router policies, workers, and the HTTP surface.

Fast policy tests drive the :class:`~repro.serve.router.Router` and
:class:`~repro.serve.worker.WorkerRuntime` directly (no processes); the
end-to-end tests spawn a real worker fleet behind a real HTTP server and
exercise the full path including crash recovery and graceful drain.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import DiagramConfig, QueryEngine
from repro.serve import (
    LatencyHistogram,
    QueryService,
    Router,
    ServeConfig,
    ServiceDrainingError,
    TokenBucket,
    WorkerRuntime,
    wait_for_health,
)
from repro.serve.protocol import OP_EXPLAIN, OP_PING, OP_QUERY, OP_STATS, Request


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory, medium_dataset):
    objects, domain = medium_dataset
    engine = QueryEngine.build(
        objects, domain, DiagramConfig(backend="ic", buffer_pages=16)
    )
    path = str(tmp_path_factory.mktemp("serve") / "engine.snap")
    engine.save(path)
    return path


def _post(url, path, body, headers=None, timeout=30.0):
    """POST JSON, returning (status, decoded body) without raising on 4xx/5xx."""
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url, path, timeout=30.0):
    try:
        with urllib.request.urlopen(url + path, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestServeConfig:
    def test_round_trip(self, snapshot):
        config = ServeConfig(snapshot_path=snapshot, workers=3, rate_limit=5.0)
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_replace_validates(self, snapshot):
        config = ServeConfig(snapshot_path=snapshot)
        assert config.replace(workers=4).workers == 4
        with pytest.raises(ValueError, match="unknown ServeConfig field"):
            config.replace(wrkers=4)
        with pytest.raises(ValueError):
            config.replace(workers=0)

    def test_rejects_bad_values(self, snapshot):
        with pytest.raises(ValueError):
            ServeConfig(snapshot_path="")
        with pytest.raises(ValueError):
            ServeConfig(snapshot_path=snapshot, store="papyrus")
        with pytest.raises(ValueError):
            ServeConfig(snapshot_path=snapshot, queue_depth=0)
        with pytest.raises(ValueError):
            ServeConfig(snapshot_path=snapshot, request_timeout=0.0)
        with pytest.raises(ValueError):
            ServeConfig(snapshot_path=snapshot, rate_limit=-1.0)


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert [bucket.allow() for _ in range(3)] == [True, True, True]
        assert bucket.allow() is False

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=1000.0, burst=1)
        assert bucket.allow() is True
        assert bucket.allow() is False
        time.sleep(0.01)
        assert bucket.allow() is True


class TestLatencyHistogram:
    def test_percentiles_bracket_the_data(self):
        histogram = LatencyHistogram()
        for _ in range(98):
            histogram.record(0.001)
        histogram.record(1.0)
        histogram.record(1.0)
        state = histogram.to_dict()
        assert state["count"] == 100
        assert 0.5 <= state["p50_ms"] <= 2.5
        assert state["p99_ms"] >= 500.0
        assert state["max_ms"] == pytest.approx(1000.0)

    def test_empty(self):
        assert LatencyHistogram().to_dict() == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0,
            "max_ms": 0.0,
        }


class TestWorkerRuntime:
    """The full request/response cycle, in-process (no fleet)."""

    @pytest.fixture(scope="class")
    def runtime(self, snapshot):
        return WorkerRuntime(0, ServeConfig(snapshot_path=snapshot, workers=1))

    def test_opens_readonly(self, runtime):
        assert runtime.engine.readonly is True

    def test_query_matches_direct_execution(self, runtime, medium_queries):
        from repro.queries.spec import PNNQuery

        point = medium_queries[0]
        body = {"type": "pnn", "point": [point.x, point.y], "threshold": 0.1}
        response = runtime.handle(Request(1, OP_QUERY, body))
        assert response.ok, response.payload
        direct = runtime.engine.execute(PNNQuery(point, threshold=0.1))
        assert response.payload["answers"] == [
            answer.to_dict() for answer in direct.answers
        ]
        assert response.query_kind == "pnn"
        assert response.seconds >= 0.0

    def test_explain_carries_plan_and_actuals(self, runtime, medium_queries):
        point = medium_queries[1]
        body = {"type": "pnn", "point": [point.x, point.y]}
        response = runtime.handle(Request(2, OP_EXPLAIN, body))
        assert response.ok
        payload = response.payload
        assert payload["type"] == "explain"
        assert payload["plan"]["kind"] == "pnn"
        assert payload["actual_page_reads"] >= 0
        assert "UV-PNN" in payload["describe"] or "plan" in payload["describe"].lower()
        assert payload["result"]["type"] == "pnn_result"

    def test_batch_is_materialised(self, runtime, medium_queries):
        body = {"type": "batch", "queries": [
            {"type": "pnn", "point": [q.x, q.y]} for q in medium_queries[:3]
        ]}
        response = runtime.handle(Request(3, OP_QUERY, body))
        assert response.ok
        assert response.payload["type"] == "batch_result"
        assert len(response.payload["results"]) == 3
        assert response.payload["cache_misses"] >= 0

    def test_bad_request(self, runtime):
        response = runtime.handle(Request(4, OP_QUERY, {"type": "nope"}))
        assert not response.ok
        assert response.payload["error"] == "bad-request"
        response = runtime.handle(Request(5, OP_QUERY, {"type": "pnn"}))
        assert not response.ok
        assert response.payload["error"] == "bad-request"

    def test_ping_and_stats(self, runtime):
        assert runtime.handle(Request(6, OP_PING, None)).ok
        response = runtime.handle(Request(7, OP_STATS, None))
        assert response.ok
        assert response.payload["readonly"] is True
        assert response.payload["backend"] == "ic"
        assert "buffer_pool_hit_ratio" in response.payload
        assert "planner_statistics" in response.payload


@pytest.fixture(scope="module")
def service(snapshot):
    """A live 2-worker service shared by the read-only endpoint tests."""
    config = ServeConfig(snapshot_path=snapshot, workers=2, port=0)
    with QueryService(config) as live:
        assert wait_for_health(live.url, timeout=30)
        yield live


class TestHTTPEndpoints:
    def test_query_pnn(self, service, medium_queries):
        point = medium_queries[0]
        status, body = _post(service.url, "/query",
                             {"type": "pnn", "point": [point.x, point.y]})
        assert status == 200
        assert body["type"] == "pnn_result"
        assert body["answers"]

    def test_parity_with_local_engine(self, service, snapshot, medium_queries):
        engine = QueryEngine.open(snapshot, store="mmap", readonly=True)
        from repro.queries.spec import PNNQuery

        for point in medium_queries[:4]:
            status, body = _post(service.url, "/query",
                                 {"type": "pnn", "point": [point.x, point.y],
                                  "threshold": 0.05})
            assert status == 200
            direct = engine.execute(PNNQuery(point, threshold=0.05))
            # Answer sets and probabilities are bit-identical; per-query I/O
            # counters depend on cache warm-up history, which differs (the
            # service already served earlier requests this session).
            assert body["answers"] == [a.to_dict() for a in direct.answers]

    def test_explain(self, service, medium_queries):
        point = medium_queries[1]
        status, body = _post(service.url, "/explain",
                             {"type": "pnn", "point": [point.x, point.y]})
        assert status == 200
        assert body["type"] == "explain"
        assert body["plan"]["backend"] == "ic"
        assert body["estimated_page_reads"] >= 0.0

    def test_knn_range_batch(self, service, medium_queries):
        point = medium_queries[2]
        status, body = _post(service.url, "/query",
                             {"type": "knn", "point": [point.x, point.y],
                              "k": 2, "worlds": 30, "seed": 5})
        assert status == 200 and body["type"] == "knn_result"
        status, body = _post(service.url, "/query",
                             {"type": "range", "region": [0, 0, 500, 500]})
        assert status == 200 and body["type"] == "range_result"
        status, body = _post(service.url, "/query", {"type": "batch", "queries": [
            {"type": "pnn", "point": [point.x, point.y]}]})
        assert status == 200 and body["type"] == "batch_result"

    def test_bad_json_is_400(self, service):
        request = urllib.request.Request(
            service.url + "/query", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_query_type_is_400(self, service):
        status, body = _post(service.url, "/query", {"type": "voronoi"})
        assert status == 400
        assert body["error"] == "bad-request"
        assert "voronoi" in body["message"]

    def test_unknown_endpoint_is_404(self, service):
        status, _ = _post(service.url, "/frobnicate", {})
        assert status == 404
        status, _ = _get(service.url, "/frobnicate")
        assert status == 404

    def test_health(self, service):
        status, body = _get(service.url, "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers_alive"] == 2

    def test_stats_surface(self, service, medium_queries):
        point = medium_queries[0]
        _post(service.url, "/query", {"type": "pnn", "point": [point.x, point.y]})
        status, body = _get(service.url, "/stats")
        assert status == 200
        router = body["router"]
        assert router["accepting"] is True
        assert router["counters"]["accepted"] >= 1
        assert router["counters"]["completed"] >= 1
        assert len(router["workers"]) == 2
        assert "pnn" in router["latency"]
        histogram = router["latency"]["pnn"]
        assert histogram["count"] >= 1
        assert histogram["p99_ms"] >= histogram["p50_ms"] >= 0.0
        engine_view = body["engine"]
        assert engine_view["readonly"] is True
        assert "buffer_pool_hit_ratio" in engine_view
        assert "planner_statistics" in engine_view


class TestAdmissionControl:
    def test_queue_full_yields_429(self, snapshot):
        # One worker, budget 1, slow reads: the second concurrent request
        # must be rejected, not queued behind the first.
        config = ServeConfig(
            snapshot_path=snapshot, workers=1, queue_depth=1,
            read_latency=0.2, port=0,
        )
        with QueryService(config) as service:
            assert wait_for_health(service.url, timeout=30)
            results = []

            def slow_query():
                results.append(_post(
                    service.url, "/query",
                    {"type": "pnn", "point": [500.0, 500.0]},
                ))

            worker = threading.Thread(target=slow_query)
            worker.start()
            time.sleep(0.05)  # let the slow query win admission first
            deadline = time.monotonic() + 5.0
            rejected = None
            while time.monotonic() < deadline:
                status, body = _post(service.url, "/query",
                                     {"type": "pnn", "point": [100.0, 100.0]})
                if status == 429:
                    rejected = (status, body)
                    break
                time.sleep(0.01)
            worker.join()
            assert rejected is not None, "never saw admission control kick in"
            assert rejected[1]["error"] == "busy"
            assert results[0][0] == 200  # the in-flight request was served
            _, stats = _get(service.url, "/stats")
            assert stats["router"]["counters"]["rejected_queue_full"] >= 1

    def test_rate_limit_yields_429(self, snapshot):
        config = ServeConfig(
            snapshot_path=snapshot, workers=1, rate_limit=1.0, rate_burst=2,
            port=0,
        )
        with QueryService(config) as service:
            assert wait_for_health(service.url, timeout=30)
            statuses = [
                _post(service.url, "/query",
                      {"type": "pnn", "point": [500.0, 500.0]},
                      headers={"X-Client-Id": "hog"})[0]
                for _ in range(4)
            ]
            assert statuses.count(429) >= 1
            # A different client has its own bucket.
            status, _ = _post(service.url, "/query",
                              {"type": "pnn", "point": [500.0, 500.0]},
                              headers={"X-Client-Id": "polite"})
            assert status == 200
            _, stats = _get(service.url, "/stats")
            assert stats["router"]["counters"]["rejected_rate_limited"] >= 1

    def test_request_timeout_yields_504(self, snapshot):
        config = ServeConfig(
            snapshot_path=snapshot, workers=1, read_latency=0.3, port=0,
        )
        with QueryService(config) as service:
            assert wait_for_health(service.url, timeout=30)
            status, body = _post(
                service.url, "/query", {"type": "pnn", "point": [500.0, 500.0]},
                headers={"X-Request-Timeout": "0.01"},
            )
            assert status == 504
            assert body["error"] == "timeout"
            _, stats = _get(service.url, "/stats")
            assert stats["router"]["counters"]["timeouts"] >= 1


class TestCrashRecovery:
    def test_killed_worker_respawns_and_request_is_retried(self, snapshot):
        import os
        import signal

        config = ServeConfig(
            snapshot_path=snapshot, workers=1, read_latency=0.1,
            respawn_delay=0.05, port=0,
        )
        with QueryService(config) as service:
            assert wait_for_health(service.url, timeout=30)
            router = service.router
            victim = router.worker_pids()[0]
            assert victim is not None

            outcome = []

            def in_flight_query():
                outcome.append(_post(
                    service.url, "/query",
                    {"type": "pnn", "point": [500.0, 500.0]}, timeout=60.0,
                ))

            thread = threading.Thread(target=in_flight_query)
            thread.start()
            time.sleep(0.05)  # let the request reach the worker
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "in-flight request never completed"

            # The orphaned request was re-executed, not failed to the client.
            status, body = outcome[0]
            assert status == 200, body
            assert body["type"] == "pnn_result"

            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                pids = router.worker_pids()
                if pids[0] is not None and pids[0] != victim and \
                        router.workers_alive() == 1:
                    break
                time.sleep(0.05)
            assert router.worker_pids()[0] != victim
            _, stats = _get(service.url, "/stats")
            counters = stats["router"]["counters"]
            assert counters["respawns"] >= 1
            assert counters["retried_after_crash"] >= 1
            # And the fleet still answers.
            status, _ = _post(service.url, "/query",
                              {"type": "pnn", "point": [100.0, 100.0]})
            assert status == 200


class TestDrainAndShutdown:
    def test_drain_rejects_new_work_and_finishes_old(self, snapshot):
        config = ServeConfig(
            snapshot_path=snapshot, workers=1, read_latency=0.15, port=0,
        )
        service = QueryService(config)
        service.start()
        try:
            assert wait_for_health(service.url, timeout=30)
            outcome = []

            def slow_query():
                outcome.append(_post(
                    service.url, "/query",
                    {"type": "pnn", "point": [500.0, 500.0]}, timeout=60.0,
                ))

            thread = threading.Thread(target=slow_query)
            thread.start()
            time.sleep(0.05)
            url = service.url  # the port dies with the server
            drained = service.stop(drain=True)
            thread.join(timeout=30.0)
            assert drained is True
            assert outcome and outcome[0][0] == 200  # in-flight work finished
            with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
                urllib.request.urlopen(url + "/health", timeout=2)
        finally:
            service.stop(drain=False)

    def test_dispatch_after_drain_raises(self, snapshot):
        config = ServeConfig(snapshot_path=snapshot, workers=1, port=0)
        router = Router(config)
        router.start()
        try:
            assert router.dispatch(OP_PING).ok
            router.drain(timeout=5.0)
            with pytest.raises(ServiceDrainingError):
                router.dispatch(OP_PING)
            assert router.counters["rejected_draining"] == 1
        finally:
            router.stop(drain=False)


class TestRouterDirect:
    """Router policies without HTTP in the way."""

    def test_worker_startup_failure_is_loud(self, tmp_path):
        config = ServeConfig(
            snapshot_path=str(tmp_path / "missing.snap"), workers=1, port=0,
        )
        router = Router(config)
        with pytest.raises(Exception, match="worker 0"):
            router.start(ready_timeout=60.0)

    def test_errors_map_to_router_exceptions(self, snapshot):
        config = ServeConfig(snapshot_path=snapshot, workers=1, port=0)
        router = Router(config)
        router.start()
        try:
            response = router.dispatch(OP_QUERY, {"type": "nope"})
            assert not response.ok
            assert response.payload["error"] == "bad-request"
            assert router.counters["errors"] == 1
        finally:
            router.stop(drain=False)

    def test_load_balances_across_workers(self, snapshot):
        config = ServeConfig(snapshot_path=snapshot, workers=2, port=0)
        router = Router(config)
        router.start()
        try:
            seen = {router.dispatch(OP_PING).worker_id for _ in range(10)}
            # Sequential pings all land on worker 0 (always least-loaded at
            # dispatch time); concurrency is what spreads the fleet.
            threads = []
            results = []

            def ping():
                # Long enough (Monte-Carlo k-NN) that the dispatches overlap
                # and the least-loaded choice spreads across the fleet.
                results.append(router.dispatch(
                    OP_QUERY, {"type": "knn", "point": [500.0, 500.0],
                               "k": 2, "worlds": 3000, "seed": 1}
                ).worker_id)

            for _ in range(8):
                threads.append(threading.Thread(target=ping))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            seen.update(results)
            assert seen == {0, 1}
        finally:
            router.stop(drain=False)
