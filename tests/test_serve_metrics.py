"""Edge-case tests for the router's admission/observability primitives.

:class:`~repro.serve.router.TokenBucket` and
:class:`~repro.serve.router.LatencyHistogram` are exercised here in
isolation (no worker fleet): degenerate capacities, long-idle refills, and
histogram boundary values that the end-to-end serve tests never hit.
"""

import math

import pytest

import repro.serve.router as router_module
from repro.serve.router import LatencyHistogram, TokenBucket


class FakeClock:
    """A controllable stand-in for ``time.monotonic``."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock(monkeypatch):
    fake = FakeClock()
    monkeypatch.setattr(router_module.time, "monotonic", fake)
    return fake


class TestTokenBucket:
    def test_burst_is_immediately_available(self, clock):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert [bucket.allow() for _ in range(4)] == [True, True, True, False]

    def test_zero_capacity_bucket_never_allows(self, clock):
        bucket = TokenBucket(rate=10.0, burst=0)
        assert not bucket.allow()
        # Even arbitrarily long idle periods cannot refill past the burst
        # capacity, and a zero-burst bucket therefore never holds a token.
        clock.advance(3600.0)
        assert not bucket.allow()

    def test_refill_after_long_idle_caps_at_burst(self, clock):
        bucket = TokenBucket(rate=1.0, burst=5)
        for _ in range(5):
            assert bucket.allow()
        assert not bucket.allow()
        # A week of idle time refills to exactly `burst`, not rate * idle.
        clock.advance(7 * 24 * 3600.0)
        assert [bucket.allow() for _ in range(6)] == [True] * 5 + [False]

    def test_partial_refill_grants_one_token(self, clock):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.allow()
        assert not bucket.allow()
        # 0.25 s at 2 tokens/s is half a token: still not admitted.
        clock.advance(0.25)
        assert not bucket.allow()
        # Another 0.25 s completes the token.
        clock.advance(0.25)
        assert bucket.allow()

    def test_zero_rate_bucket_never_refills(self, clock):
        bucket = TokenBucket(rate=0.0, burst=1)
        assert bucket.allow()
        clock.advance(3600.0)
        assert not bucket.allow()


class TestLatencyHistogram:
    def test_empty_histogram_percentiles_are_zero(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.50) == 0.0
        assert hist.percentile(0.99) == 0.0
        stats = hist.to_dict()
        assert stats["count"] == 0
        assert stats["mean_ms"] == 0.0
        assert stats["p50_ms"] == 0.0
        assert stats["max_ms"] == 0.0

    def test_single_sample_lands_in_its_log_bucket(self):
        hist = LatencyHistogram()
        hist.record(0.010)  # 10 ms
        p50 = hist.percentile(0.50)
        # The estimate is the upper bound of the 10 ms bucket: at most one
        # resolution step (22%) above the true value, and never below it.
        assert 0.010 <= p50 <= 0.010 * 1.22
        assert hist.max == 0.010
        assert hist.count == 1

    def test_boundary_value_maps_to_its_own_bucket(self):
        # A sample exactly on a bucket bound must report that bound, not the
        # next bucket up (bisect_left semantics).
        bound = LatencyHistogram._BOUNDS[7]
        hist = LatencyHistogram()
        hist.record(bound)
        assert hist.percentile(0.50) == pytest.approx(bound)

    def test_below_smallest_bound_clamps_to_first_bucket(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        assert hist.percentile(0.50) == pytest.approx(LatencyHistogram._BOUNDS[0])

    def test_above_largest_bound_reports_observed_max(self):
        hist = LatencyHistogram()
        beyond = LatencyHistogram._BOUNDS[-1] * 10.0
        hist.record(beyond)
        assert hist.percentile(0.50) == pytest.approx(beyond)
        assert hist.max == pytest.approx(beyond)

    def test_percentiles_are_monotone_and_bounded_by_max(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 4, 8, 16, 32, 64, 128):
            hist.record(ms / 1000.0)
        p50, p90, p99 = (hist.percentile(f) for f in (0.50, 0.90, 0.99))
        assert p50 <= p90 <= p99
        assert p99 <= max(hist.max, LatencyHistogram._BOUNDS[-1])

    def test_mean_and_count_track_all_samples(self):
        hist = LatencyHistogram()
        samples = [0.001, 0.002, 0.003, 0.004]
        for value in samples:
            hist.record(value)
        stats = hist.to_dict()
        assert stats["count"] == len(samples)
        assert stats["mean_ms"] == pytest.approx(
            sum(samples) / len(samples) * 1000.0
        )
        assert stats["max_ms"] == pytest.approx(0.004 * 1000.0)

    def test_bounds_are_strictly_increasing(self):
        bounds = LatencyHistogram._BOUNDS
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        assert math.isclose(bounds[0], 50e-6)
