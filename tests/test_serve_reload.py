"""Hot reload: a serve fleet picks up new snapshot generations without restart.

A :class:`~repro.serve.service.QueryService` pointed at a live deployment
directory (with ``reload_poll`` set) watches the manifest; when an external
checkpoint flips it to generation N+1, the router rolls the fleet one worker
at a time through an ``OP_RELOAD``, so the in-flight and concurrent query
stream sees zero client-visible errors across the flip.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import DiagramConfig, Point, QueryEngine
from repro.engine.snapshot import read_manifest
from repro.serve import QueryService, ServeConfig, wait_for_health
from repro.uncertain.objects import UncertainObject
from repro.uncertain.pdf import UniformPdf
from repro.geometry.circle import Circle
from repro.wal.checkpoint import Checkpointer


@pytest.fixture()
def deployment(tmp_path, medium_dataset):
    objects, domain = medium_dataset
    engine = QueryEngine.build(
        objects, domain, DiagramConfig(backend="grid", buffer_pages=16)
    )
    directory = str(tmp_path / "live")
    engine.save_generation(directory)
    return directory


def _post(url, path, body, timeout=30.0):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url, path, timeout=30.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _checkpoint_with_extra_object(directory, oid=777000):
    """Insert a fresh object and flip the deployment to the next generation."""
    engine = QueryEngine.open_live(directory)
    try:
        radius = 30.0
        center = Point(123.0, 456.0)
        engine.insert(UncertainObject(oid, Circle(center, radius),
                                      UniformPdf(radius)))
        result = Checkpointer(engine).run_once()
        assert result is not None
        return result.generation, center
    finally:
        engine.close_wal()


class TestManualReload:
    def test_reload_swaps_generation(self, deployment):
        config = ServeConfig(snapshot_path=deployment, workers=2, port=0)
        with QueryService(config) as service:
            assert wait_for_health(service.url, timeout=30)
            assert service.generation == 1

            generation, center = _checkpoint_with_extra_object(deployment)
            assert generation == 2

            swapped = service.reload()
            assert swapped == 2  # both workers picked up the new snapshot
            assert service.generation == 2

            # The new generation is actually served: the freshly inserted
            # object answers a PNN at its own center.
            status, body = _post(service.url, "/query",
                                 {"type": "pnn", "point": [123.0, 456.0]})
            assert status == 200
            answered = {a["oid"] for a in body["answers"]}
            assert 777000 in answered

    def test_reload_is_idempotent(self, deployment):
        config = ServeConfig(snapshot_path=deployment, workers=1, port=0)
        with QueryService(config) as service:
            assert wait_for_health(service.url, timeout=30)
            assert service.reload() == 0  # nothing changed, nothing swapped


class TestPartialReloadFailure:
    """``generation`` only advances once every live worker confirms it, so
    the manifest watcher keeps retrying a partially failed roll instead of
    stranding one worker on a stale (soon pruned) generation."""

    class _StubRouter:
        def __init__(self, responses):
            self.responses = responses
            self.calls = 0

        def reload_workers(self, timeout=None):
            self.calls += 1
            return self.responses

    @staticmethod
    def _response(ok, payload, worker_id=0):
        from repro.serve.protocol import Response

        return Response(request_id=0, ok=ok, payload=payload,
                        worker_id=worker_id)

    def _service_with(self, deployment, responses):
        service = QueryService(ServeConfig(snapshot_path=deployment, port=0))
        service._generation = 1
        service.router = self._StubRouter(responses)
        return service

    def test_partial_failure_keeps_generation_behind(self, deployment):
        service = self._service_with(deployment, [
            self._response(True, {"reloaded": True, "generation": 2},
                           worker_id=0),
            self._response(False, {"error": "internal", "message": "boom"},
                           worker_id=1),
        ])
        assert service.reload() == 1
        assert service.generation == 1  # the failed worker still serves gen 1

    def test_straggler_pins_generation_to_fleet_minimum(self, deployment):
        service = self._service_with(deployment, [
            self._response(True, {"reloaded": True, "generation": 2},
                           worker_id=0),
            self._response(True, {"reloaded": False, "generation": 1},
                           worker_id=1),
        ])
        service.reload()
        assert service.generation == 1  # not every worker is on gen 2 yet

    def test_full_success_advances_generation(self, deployment):
        service = self._service_with(deployment, [
            self._response(True, {"reloaded": True, "generation": 2},
                           worker_id=0),
            self._response(True, {"reloaded": False, "generation": 2},
                           worker_id=1),
        ])
        assert service.reload() == 1
        assert service.generation == 2

    def test_no_live_workers_keeps_generation(self, deployment):
        service = self._service_with(deployment, [])
        assert service.reload() == 0
        assert service.generation == 1


class TestManifestWatcher:
    def test_fleet_follows_the_manifest_with_zero_errors(self, deployment):
        config = ServeConfig(
            snapshot_path=deployment, workers=2, port=0, reload_poll=0.1,
        )
        with QueryService(config) as service:
            assert wait_for_health(service.url, timeout=30)

            stop = threading.Event()
            statuses = []
            errors = []

            def hammer():
                while not stop.is_set():
                    try:
                        status, _ = _post(
                            service.url, "/query",
                            {"type": "pnn", "point": [500.0, 500.0]},
                        )
                        statuses.append(status)
                    except Exception as exc:  # noqa: BLE001
                        errors.append(repr(exc))
                    time.sleep(0.01)

            client = threading.Thread(target=hammer)
            client.start()
            try:
                time.sleep(0.2)  # some traffic against generation 1
                generation, _ = _checkpoint_with_extra_object(deployment)
                assert generation == 2

                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if service.generation == 2:
                        break
                    time.sleep(0.05)
                assert service.generation == 2, "watcher never saw the flip"
                time.sleep(0.2)  # some traffic against generation 2
            finally:
                stop.set()
                client.join()

            assert not errors, f"client-visible transport errors: {errors}"
            assert statuses, "no queries ran during the flip"
            assert set(statuses) == {200}, (
                f"non-200 during rolling reload: {sorted(set(statuses))}"
            )

            _, stats = _get(service.url, "/stats")
            assert stats["service"]["generation"] == 2
            assert stats["router"]["counters"]["reloads"] >= 2
            assert read_manifest(deployment).generation == 2
