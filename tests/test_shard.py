"""The sharded engine: wire format, routing, and bit-identical parity.

The distributed engine's acceptance contract is that sharding is invisible
in answers: for every backend and every descriptor family, the scatter-
gather router returns exactly what one engine over the whole dataset would
-- ids, probabilities, partition listings, ordering, everything.  These
tests pin that contract, the ``SHARDMAP`` wire format (property-based), the
routing savings the shard bounds buy, and the live update / checkpoint /
rebalance cycle.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiagramConfig, Point, QueryEngine, generate_uniform_objects
from repro.queries.spec import BatchQuery, KNNQuery, PNNQuery, RangeQuery
from repro.shard import (
    SHARDMAP_NAME,
    ShardedQueryEngine,
    build_shard_map,
    build_sharded_deployment,
    is_sharded_directory,
    plan_rebalance,
    read_shard_deployment,
    rebalance,
)
from repro.shard.map import ShardInfo, ShardMap
from repro.uncertain.objects import UncertainObject

BACKENDS = ("ic", "icr", "basic", "rtree", "grid")

CONFIG = DiagramConfig(page_capacity=16, seed_knn=20, rtree_fanout=16,
                       grid_resolution=16)


@pytest.fixture(scope="module")
def dataset():
    objects, domain = generate_uniform_objects(48, seed=7, diameter=400.0)
    return objects, domain


@pytest.fixture(scope="module")
def deployments(dataset, tmp_path_factory):
    """One sharded deployment and one reference engine per backend."""
    objects, domain = dataset
    built = {}
    for backend in BACKENDS:
        config = CONFIG.replace(backend=backend)
        directory = str(tmp_path_factory.mktemp(f"shard-{backend}"))
        build_sharded_deployment(objects, domain, directory,
                                 config=config, shards=4)
        reference = QueryEngine.build(objects, domain, config)
        built[backend] = (directory, reference)
    return built


def _query_points(domain):
    span_x = domain.xmax - domain.xmin
    span_y = domain.ymax - domain.ymin
    return [
        Point(domain.xmin + 0.5 * span_x, domain.ymin + 0.5 * span_y),
        Point(domain.xmin + 0.05 * span_x, domain.ymin + 0.05 * span_y),
        Point(domain.xmin + 0.9 * span_x, domain.ymin + 0.3 * span_y),
    ]


# --------------------------------------------------------------------- #
# ShardMap wire format (property-based)
# --------------------------------------------------------------------- #
class TestShardMapWire:
    @given(
        count=st.integers(min_value=1, max_value=40),
        shards=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_round_trip_through_json(self, count, shards, seed):
        objects, domain = generate_uniform_objects(count, seed=seed)
        shard_map = build_shard_map(objects, domain, shards)
        state = json.loads(json.dumps(shard_map.to_dict()))
        assert ShardMap.from_dict(state) == shard_map

    @given(
        count=st.integers(min_value=4, max_value=40),
        shards=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_every_object_lands_in_exactly_one_shard(self, count, shards, seed):
        objects, domain = generate_uniform_objects(count, seed=seed)
        shard_map = build_shard_map(objects, domain, shards)
        assert sum(shard.objects for shard in shard_map.shards) == count
        for obj in objects:
            owner = shard_map.shard_of_point(obj.center)
            assert shard_map.shards[owner].tile.contains_point(obj.center)

    def test_rejects_non_contiguous_ids(self, dataset):
        objects, domain = dataset
        shard_map = build_shard_map(objects, domain, 2)
        shifted = [
            ShardInfo(shard_id=shard.shard_id + 1, tile=shard.tile,
                      bound=shard.bound, objects=shard.objects,
                      max_radius=shard.max_radius)
            for shard in shard_map.shards
        ]
        with pytest.raises(ValueError, match="contiguous"):
            ShardMap(domain=domain, strategy="kd_tile", shards=tuple(shifted))

    def test_rejects_unknown_wire_format(self, dataset):
        objects, domain = dataset
        state = build_shard_map(objects, domain, 2).to_dict()
        state["shard_map_format"] = 99
        with pytest.raises(ValueError, match="format"):
            ShardMap.from_dict(state)

    def test_requested_count_clamps_to_objects(self):
        objects, domain = generate_uniform_objects(3, seed=1)
        shard_map = build_shard_map(objects, domain, 16)
        assert len(shard_map) == 3


# --------------------------------------------------------------------- #
# bit-identical parity on every backend
# --------------------------------------------------------------------- #
class TestParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pnn_identical_including_probabilities(self, backend, dataset,
                                                   deployments):
        _, domain = dataset
        directory, reference = deployments[backend]
        sharded = ShardedQueryEngine.open(directory)
        for point in _query_points(domain):
            for query in (
                PNNQuery(point),
                PNNQuery(point, threshold=0.05),
                PNNQuery(point, top_k=2),
                PNNQuery(point, compute_probabilities=False),
            ):
                expected = reference.execute(query)
                got = sharded.execute(query)
                assert [a.to_dict() for a in got.answers] == [
                    a.to_dict() for a in expected.answers
                ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_knn_identical_probabilities(self, backend, dataset, deployments):
        _, domain = dataset
        directory, reference = deployments[backend]
        sharded = ShardedQueryEngine.open(directory)
        for point in _query_points(domain):
            query = KNNQuery(point, k=3, worlds=300, seed=11)
            expected = reference.execute(query)
            got = sharded.execute(query)
            assert [a.to_dict() for a in got.answers] == [
                a.to_dict() for a in expected.answers
            ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_range_identical_partitions(self, backend, dataset, deployments):
        _, domain = dataset
        directory, reference = deployments[backend]
        sharded = ShardedQueryEngine.open(directory)
        span_x = domain.xmax - domain.xmin
        span_y = domain.ymax - domain.ymin
        from repro import Rect

        region = Rect(domain.xmin + 0.2 * span_x, domain.ymin + 0.2 * span_y,
                      domain.xmin + 0.7 * span_x, domain.ymin + 0.6 * span_y)
        query = RangeQuery(region=region)
        expected = reference.execute(query)
        got = sharded.execute(query)
        assert len(got.partitions) == len(expected.partitions)
        for mine, theirs in zip(got.partitions, expected.partitions):
            assert mine.region == theirs.region
            assert mine.object_count == theirs.object_count
            assert mine.density == theirs.density

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scatter_all_matches_routed(self, backend, dataset, deployments):
        _, domain = dataset
        directory, _ = deployments[backend]
        sharded = ShardedQueryEngine.open(directory)
        for point in _query_points(domain):
            query = PNNQuery(point)
            routed = sharded.execute(query)
            scattered = sharded.execute(query, scatter_all=True)
            assert [a.to_dict() for a in routed.answers] == [
                a.to_dict() for a in scattered.answers
            ]

    def test_batch_stream_matches_sequential(self, dataset, deployments):
        _, domain = dataset
        directory, reference = deployments["ic"]
        sharded = ShardedQueryEngine.open(directory)
        batch = BatchQuery([PNNQuery(p) for p in _query_points(domain)])
        triples = list(sharded.execute(batch))
        assert len(triples) == 3
        for (query, result, plan), point in zip(triples, _query_points(domain)):
            expected = reference.execute(PNNQuery(point))
            assert [a.to_dict() for a in result.answers] == [
                a.to_dict() for a in expected.answers
            ]
            assert plan.strategy == "shard-scatter-gather"


# --------------------------------------------------------------------- #
# routing actually prunes shards
# --------------------------------------------------------------------- #
class TestRouting:
    def test_corner_query_skips_far_shards(self, dataset, deployments):
        _, domain = dataset
        directory, _ = deployments["ic"]
        corner = Point(domain.xmin + 1.0, domain.ymin + 1.0)

        routed_engine = ShardedQueryEngine.open(directory)
        routed = routed_engine.execute(PNNQuery(corner))
        scatter_engine = ShardedQueryEngine.open(directory)
        scattered = scatter_engine.execute(PNNQuery(corner), scatter_all=True)

        assert routed.index_io.page_reads < scattered.index_io.page_reads

    def test_explain_reports_scatter_gather_plan(self, dataset, deployments):
        _, domain = dataset
        directory, _ = deployments["ic"]
        sharded = ShardedQueryEngine.open(directory)
        report = sharded.explain(PNNQuery(_query_points(domain)[0]))
        assert report.plan.strategy == "shard-scatter-gather"
        assert report.plan.buffer_pool == "per-shard"
        assert any("scatter-gather over 4 shards" in note
                   for note in report.plan.notes)


# --------------------------------------------------------------------- #
# deployment layout and snapshot headers
# --------------------------------------------------------------------- #
class TestDeploymentLayout:
    def test_shard_headers_embed_the_map(self, deployments):
        directory, _ = deployments["ic"]
        deployment = read_shard_deployment(directory)
        for shard_id, path in enumerate(deployment.shard_paths(directory)):
            engine = QueryEngine.open_live(path, store="memory")
            try:
                header = engine.shard_info
                assert header is not None
                assert header["shard_id"] == shard_id
                assert header["epoch"] == deployment.epoch
                assert ShardMap.from_dict(header["shard_map"]) == \
                    deployment.shard_map
            finally:
                engine.close_wal()

    def test_is_sharded_directory(self, deployments, tmp_path):
        directory, _ = deployments["ic"]
        assert is_sharded_directory(directory)
        assert not is_sharded_directory(str(tmp_path))
        assert not is_sharded_directory(os.path.join(directory, "missing"))

    def test_corrupt_manifest_is_a_value_error(self, dataset, tmp_path):
        objects, domain = dataset
        directory = str(tmp_path / "dep")
        build_sharded_deployment(objects, domain, directory,
                                 config=CONFIG, shards=2)
        with open(os.path.join(directory, SHARDMAP_NAME), "w") as handle:
            handle.write("{not json")
        with pytest.raises(ValueError):
            read_shard_deployment(directory)


# --------------------------------------------------------------------- #
# live updates, checkpointing, rebalance
# --------------------------------------------------------------------- #
class TestLiveCycle:
    def test_update_checkpoint_reopen_and_rebalance(self, dataset, tmp_path):
        objects, domain = dataset
        directory = str(tmp_path / "live")
        config = CONFIG.replace(backend="rtree")
        build_sharded_deployment(objects, domain, directory,
                                 config=config, shards=4)

        center = Point((domain.xmin + domain.xmax) / 2,
                       (domain.ymin + domain.ymax) / 2)
        extra = UncertainObject.uniform(999, center, 180.0)

        engine = ShardedQueryEngine.open_live(directory, store="memory")
        try:
            engine.insert(extra)
            engine.delete(objects[0].oid)
            with pytest.raises(KeyError):
                engine.delete(objects[0].oid)
            results = engine.checkpoint(force=True)
            assert all(result is not None for result in results)
            assert engine.generations == [2, 2, 2, 2]
        finally:
            engine.close()

        survivors = [obj for obj in objects if obj.oid != objects[0].oid]
        survivors.append(extra)
        reference = QueryEngine.build(
            sorted(survivors, key=lambda obj: obj.oid), domain, config
        )
        reopened = ShardedQueryEngine.open(directory, store="file")
        for point in _query_points(domain):
            expected = reference.execute(PNNQuery(point))
            got = reopened.execute(PNNQuery(point))
            assert [a.to_dict() for a in got.answers] == [
                a.to_dict() for a in expected.answers
            ]

        plan, new_deployment = rebalance(directory, target_shards=2,
                                         config=config)
        assert plan.next_epoch == 2
        assert new_deployment is not None
        assert len(new_deployment.shard_map) == 2

        rebalanced = ShardedQueryEngine.open(directory, store="file")
        assert rebalanced.epoch == 2
        for point in _query_points(domain):
            expected = reference.execute(PNNQuery(point))
            got = rebalanced.execute(PNNQuery(point))
            assert [a.to_dict() for a in got.answers] == [
                a.to_dict() for a in expected.answers
            ]

    def test_readonly_open_refuses_mutation(self, dataset, deployments):
        objects, _ = dataset
        directory, _ = deployments["ic"]
        engine = ShardedQueryEngine.open(directory)
        with pytest.raises(Exception):
            engine.insert(objects[0])
        with pytest.raises(RuntimeError):
            engine.checkpoint()

    def test_knn_seed_mirrors_explicit_rng(self, dataset, deployments):
        _, domain = dataset
        directory, _ = deployments["rtree"]
        sharded = ShardedQueryEngine.open(directory)
        point = _query_points(domain)[0]
        seeded = sharded.execute(KNNQuery(point, k=2, worlds=200, seed=5))
        explicit = sharded.execute(KNNQuery(point, k=2, worlds=200),
                                   rng=np.random.default_rng(5))
        assert [a.to_dict() for a in seeded.answers] == [
            a.to_dict() for a in explicit.answers
        ]


class TestRebalancePlanning:
    def _deployment(self, dataset, tmp_path):
        objects, domain = dataset
        directory = str(tmp_path / "plan")
        return build_sharded_deployment(objects, domain, directory,
                                        config=CONFIG.replace(backend="rtree"),
                                        shards=4)

    def test_balanced_layout_is_kept(self, dataset, tmp_path):
        deployment = self._deployment(dataset, tmp_path)
        plan = plan_rebalance(deployment, (12, 12, 12, 12))
        assert plan.target_shards == 4
        assert not plan.changes_layout

    def test_skew_splits(self, dataset, tmp_path):
        deployment = self._deployment(dataset, tmp_path)
        plan = plan_rebalance(deployment, (90, 2, 2, 2))
        assert plan.target_shards == 8
        assert plan.changes_layout

    def test_underload_merges(self, dataset, tmp_path):
        deployment = self._deployment(dataset, tmp_path)
        plan = plan_rebalance(deployment, (1, 1, 1, 20), max_skew=2.0)
        assert plan.target_shards == 8  # 20 > 2x mean of 5.75: split wins
        plan = plan_rebalance(deployment, (1, 1, 1, 1), max_skew=2.0)
        assert plan.target_shards == 4  # perfectly level: layout kept


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #
class TestCli:
    def test_shard_build_query_status_rebalance(self, tmp_path, capsys):
        from repro.cli import main

        directory = str(tmp_path / "clidep")
        assert main(["shard-build", "--objects", "30", "--seed", "3",
                     "--backend", "rtree", "--save-dir", directory,
                     "--shards", "3"]) == 0
        assert "3 shards" in capsys.readouterr().out

        assert main(["query", "--load", directory, "--at", "5000,5000"]) == 0
        assert "opened snapshot" in capsys.readouterr().out

        assert main(["checkpoint", "--dir", directory, "--status"]) == 0
        out = capsys.readouterr().out
        assert "sharded deployment" in out
        assert out.count("generation 1") == 3

        assert main(["rebalance", "--dir", directory, "--shards", "2",
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "dry run" in out
        assert is_sharded_directory(directory)
        assert read_shard_deployment(directory).epoch == 1

        assert main(["rebalance", "--dir", directory, "--shards", "2",
                     "--prune"]) == 0
        assert "epoch 2" in capsys.readouterr().out
        assert len(read_shard_deployment(directory).shard_map) == 2

    def test_rebalance_refuses_plain_directories(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["rebalance", "--dir", str(tmp_path)]) == 2
        assert "not a sharded deployment" in capsys.readouterr().err
