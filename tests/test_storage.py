"""Unit tests for the simulated storage layer (pages, disk, buffer, stats, object store)."""

import pytest

from repro.geometry.point import Point
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.object_store import ObjectStore
from repro.storage.page import Page, entries_per_page
from repro.storage.stats import IOStats, TimingBreakdown
from repro.uncertain.objects import UncertainObject


class TestPage:
    def test_capacity_enforced(self):
        page = Page(0, capacity=2)
        page.add("a")
        page.add("b")
        assert page.is_full()
        with pytest.raises(OverflowError):
            page.add("c")

    def test_remaining(self):
        page = Page(0, capacity=3)
        page.add("a")
        assert page.remaining() == 2
        assert len(page) == 1

    def test_entries_per_page(self):
        assert entries_per_page(40, 4096) == 102
        assert entries_per_page(8192, 4096) == 1
        with pytest.raises(ValueError):
            entries_per_page(0)


class TestDiskManager:
    def test_allocation_and_read_write_counting(self):
        disk = DiskManager()
        page = disk.allocate_page()
        assert disk.stats.pages_allocated == 1
        assert disk.stats.page_reads == 0
        disk.read_page(page.page_id)
        disk.write_page(page)
        assert disk.stats.page_reads == 1
        assert disk.stats.page_writes == 1
        assert disk.stats.total_io == 2

    def test_peek_does_not_count(self):
        disk = DiskManager()
        page = disk.allocate_page()
        disk.peek_page(page.page_id)
        assert disk.stats.page_reads == 0

    def test_read_unknown_page_raises(self):
        disk = DiskManager()
        with pytest.raises(KeyError):
            disk.read_page(99)

    def test_free_page(self):
        disk = DiskManager()
        page = disk.allocate_page()
        disk.free_page(page.page_id)
        assert disk.page_count == 0
        with pytest.raises(KeyError):
            disk.read_page(page.page_id)

    def test_reset_stats_returns_previous(self):
        disk = DiskManager()
        page = disk.allocate_page()
        disk.read_page(page.page_id)
        before = disk.reset_stats()
        assert before.page_reads == 1
        assert disk.stats.page_reads == 0

    def test_total_entries(self):
        disk = DiskManager()
        page = disk.allocate_page(capacity=4)
        page.add(1)
        page.add(2)
        assert disk.total_entries() == 2


class TestIOStats:
    def test_snapshot_and_delta(self):
        stats = IOStats()
        stats.page_reads = 5
        snap = stats.snapshot()
        stats.page_reads = 9
        delta = stats.delta(snap)
        assert delta.page_reads == 4

    def test_reset_preserves_allocations(self):
        stats = IOStats(page_reads=3, page_writes=2, pages_allocated=7)
        stats.reset()
        assert stats.page_reads == 0
        assert stats.pages_allocated == 7

    def test_as_dict(self):
        stats = IOStats(page_reads=1, page_writes=2, pages_allocated=3)
        assert stats.as_dict() == {
            "page_reads": 1,
            "page_writes": 2,
            "pages_allocated": 3,
            "cache_hits": 0,
            "cache_misses": 0,
        }

    def test_cache_counters_reset_and_ratio(self):
        stats = IOStats(cache_hits=3, cache_misses=1)
        assert stats.cache_hit_ratio == pytest.approx(0.75)
        stats.reset()
        assert stats.cache_hits == 0
        assert stats.cache_misses == 0
        assert IOStats().cache_hit_ratio == 0.0


class TestTimingBreakdown:
    def test_accumulation_and_fractions(self):
        timing = TimingBreakdown()
        timing.add("a", 1.0)
        timing.add("a", 1.0)
        timing.add("b", 2.0)
        assert timing.get("a") == pytest.approx(2.0)
        assert timing.total() == pytest.approx(4.0)
        assert timing.fractions()["b"] == pytest.approx(0.5)

    def test_empty_fractions(self):
        assert TimingBreakdown().fractions() == {}

    def test_merge(self):
        a = TimingBreakdown({"x": 1.0})
        b = TimingBreakdown({"x": 2.0, "y": 3.0})
        a.merge(b)
        assert a.get("x") == pytest.approx(3.0)
        assert a.get("y") == pytest.approx(3.0)


class TestBufferPool:
    def test_cache_hit_avoids_disk_read(self):
        disk = DiskManager()
        page = disk.allocate_page()
        pool = BufferPool(disk, capacity=2)
        pool.get_page(page.page_id)
        pool.get_page(page.page_id)
        assert disk.stats.page_reads == 1
        assert pool.hits == 1
        assert pool.misses == 1
        assert pool.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction(self):
        disk = DiskManager()
        pages = [disk.allocate_page() for _ in range(3)]
        pool = BufferPool(disk, capacity=2)
        pool.get_page(pages[0].page_id)
        pool.get_page(pages[1].page_id)
        pool.get_page(pages[2].page_id)  # evicts page 0
        pool.get_page(pages[0].page_id)  # miss again
        assert disk.stats.page_reads == 4

    def test_zero_capacity_disables_caching(self):
        disk = DiskManager()
        page = disk.allocate_page()
        pool = BufferPool(disk, capacity=0)
        pool.get_page(page.page_id)
        pool.get_page(page.page_id)
        assert disk.stats.page_reads == 2

    def test_invalidate(self):
        disk = DiskManager()
        page = disk.allocate_page()
        pool = BufferPool(disk, capacity=2)
        pool.get_page(page.page_id)
        pool.invalidate(page.page_id)
        pool.get_page(page.page_id)
        assert disk.stats.page_reads == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(DiskManager(), capacity=-1)


class TestObjectStore:
    def _objects(self, count):
        return [
            UncertainObject.uniform(i, Point(float(i), float(i)), 1.0)
            for i in range(count)
        ]

    def test_fetch_single(self):
        disk = DiskManager()
        store = ObjectStore(disk, objects_per_page=4)
        store.bulk_load(self._objects(10))
        obj = store.fetch(7)
        assert obj.oid == 7
        assert disk.stats.page_reads == 1

    def test_fetch_many_reads_each_page_once(self):
        disk = DiskManager()
        store = ObjectStore(disk, objects_per_page=4)
        store.bulk_load(self._objects(10))
        disk.reset_stats()
        objs = store.fetch_many([0, 1, 2, 3])  # same page
        assert [o.oid for o in objs] == [0, 1, 2, 3]
        assert disk.stats.page_reads == 1
        objs = store.fetch_many([0, 9])  # two pages
        assert disk.stats.page_reads == 3

    def test_contains_and_len(self):
        store = ObjectStore(DiskManager(), objects_per_page=4)
        store.bulk_load(self._objects(5))
        assert 3 in store
        assert 99 not in store
        assert len(store) == 5

    def test_invalid_objects_per_page(self):
        with pytest.raises(ValueError):
            ObjectStore(DiskManager(), objects_per_page=0)
