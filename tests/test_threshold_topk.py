"""Threshold (tau) and top-k PNN correctness.

The contract: a tau / top-k query's answers must equal post-filtering the
full refinement output -- same answer ids, same probabilities -- on every
backend and with both kernels, while the refinement step provably does less
full integration whenever the filters actually bite.
"""

import pytest

from repro import (
    DiagramConfig,
    QueryEngine,
    generate_query_points,
    generate_uniform_objects,
)
from repro.queries.probability import qualification_probabilities
from repro.queries.probability_kernel import (
    RefinementStats,
    RingCache,
    qualification_probabilities_vectorized,
)
from repro.queries.spec import PNNQuery

BACKENDS = ("ic", "icr", "basic", "rtree", "grid")
KERNELS = ("vectorized", "scalar")
# A dense dataset so answer sets carry several low-probability candidates.
CONFIG = DiagramConfig(page_capacity=16, seed_knn=60, rtree_fanout=16,
                       grid_resolution=16)


@pytest.fixture(scope="module")
def dataset():
    objects, domain = generate_uniform_objects(150, seed=9, diameter=900.0)
    queries = generate_query_points(5, domain, seed=123)
    return objects, domain, queries


@pytest.fixture(scope="module")
def engines(dataset):
    objects, domain, _ = dataset
    return {
        name: QueryEngine.build(objects, domain, CONFIG.replace(backend=name))
        for name in BACKENDS
    }


def post_filter(full, threshold=0.0, top_k=None):
    """The specification: filter the full result's answers after the fact."""
    answers = [a for a in full.answers if a.probability >= threshold]
    if top_k is not None:
        answers = answers[:top_k]
    return answers


def assert_answers_match(got, expected):
    assert [a.oid for a in got] == [a.oid for a in expected]
    for g, e in zip(got, expected):
        assert g.probability == pytest.approx(e.probability, abs=1e-12)


class TestThresholdEqualsPostFilter:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("threshold", [0.0, 0.1, 0.4])
    def test_threshold_on_all_backends_and_kernels(
        self, engines, dataset, backend, kernel, threshold
    ):
        _, _, queries = dataset
        engine = engines[backend]
        engine.config = engine.config.replace(prob_kernel=kernel)
        try:
            for q in queries:
                full = engine.execute(PNNQuery(q))
                filtered = engine.execute(PNNQuery(q, threshold=threshold))
                assert_answers_match(
                    filtered.answers, post_filter(full, threshold=threshold)
                )
        finally:
            engine.config = engine.config.replace(prob_kernel="vectorized")

    def test_tau_zero_is_identical_to_unfiltered(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        for q in queries:
            full = engine.execute(PNNQuery(q))
            zero = engine.execute(PNNQuery(q, threshold=0.0))
            assert [(a.oid, a.probability) for a in zero.answers] == (
                [(a.oid, a.probability) for a in full.answers]
            )

    def test_tau_above_max_probability_empties_the_answer(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        for q in queries:
            full = engine.execute(PNNQuery(q))
            max_p = max(a.probability for a in full.answers)
            if max_p >= 1.0:
                continue  # a certain winner survives every threshold
            tau = min(1.0, max_p + (1.0 - max_p) / 2.0)
            filtered = engine.execute(PNNQuery(q, threshold=tau))
            assert filtered.answers == []
            assert filtered.answer_ids == []


class TestTopKEqualsPostFilter:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("top_k", [1, 2, 3])
    def test_top_k_on_all_backends_and_kernels(
        self, engines, dataset, backend, kernel, top_k
    ):
        _, _, queries = dataset
        engine = engines[backend]
        engine.config = engine.config.replace(prob_kernel=kernel)
        try:
            for q in queries:
                full = engine.execute(PNNQuery(q))
                cut = engine.execute(PNNQuery(q, top_k=top_k))
                assert_answers_match(cut.answers, post_filter(full, top_k=top_k))
                assert len(cut.answers) <= top_k
        finally:
            engine.config = engine.config.replace(prob_kernel="vectorized")

    def test_k_larger_than_answer_set_returns_everything(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        for q in queries:
            full = engine.execute(PNNQuery(q))
            cut = engine.execute(PNNQuery(q, top_k=len(full.answers) + 50))
            assert_answers_match(cut.answers, full.answers)

    def test_threshold_and_top_k_combine(self, engines, dataset):
        _, _, queries = dataset
        engine = engines["ic"]
        for q in queries:
            full = engine.execute(PNNQuery(q))
            both = engine.execute(PNNQuery(q, threshold=0.1, top_k=2))
            assert_answers_match(
                both.answers, post_filter(full, threshold=0.1, top_k=2)
            )


class TestEarlyTermination:
    """The filters must reduce full-integration work, not just post-filter."""

    def collect_answer_sets(self, engine, queries):
        sets = []
        for q in queries:
            ids = engine.execute(PNNQuery(q, compute_probabilities=False)).answer_ids
            objects = engine.object_store.fetch_many(ids)
            if len(objects) >= 3:
                sets.append((q, objects))
        return sets

    def test_vectorized_kernel_prunes(self, engines, dataset):
        _, _, queries = dataset
        answer_sets = self.collect_answer_sets(engines["ic"], queries)
        assert answer_sets, "workload produced no multi-candidate refinements"
        full = RefinementStats()
        filtered = RefinementStats()
        cache = RingCache()
        for q, objects in answer_sets:
            a = RefinementStats()
            qualification_probabilities_vectorized(objects, q, ring_cache=cache,
                                                   stats=a)
            full.merge(a)
            b = RefinementStats()
            qualification_probabilities_vectorized(
                objects, q, ring_cache=cache, threshold=0.1, top_k=2, stats=b
            )
            filtered.merge(b)
        assert full.integrated + full.trivial == full.candidates
        assert full.pruned == 0
        assert filtered.pruned > 0
        assert filtered.integrated < full.integrated
        assert filtered.candidates == full.candidates
        # every candidate lands in exactly one bucket
        assert (
            filtered.integrated + filtered.pruned + filtered.trivial
            == filtered.candidates
        )

    def test_scalar_kernel_prunes(self, engines, dataset):
        _, _, queries = dataset
        answer_sets = self.collect_answer_sets(engines["ic"], queries)
        full = RefinementStats()
        filtered = RefinementStats()
        for q, objects in answer_sets:
            a = RefinementStats()
            qualification_probabilities(objects, q, stats=a)
            full.merge(a)
            b = RefinementStats()
            qualification_probabilities(objects, q, threshold=0.1, stats=b)
            filtered.merge(b)
        assert filtered.integrated < full.integrated
        assert filtered.pruned_threshold > 0

    def test_filters_without_probabilities_rejected_everywhere(
        self, engines, dataset
    ):
        """The pipeline guards the processor-level query() APIs too: a
        threshold over never-computed probabilities would silently empty
        every answer set."""
        from repro.core.pnn import UVIndexPNN
        from repro.rtree.pnn import RTreePNN

        _, _, queries = dataset
        engine = engines["ic"]
        processor = UVIndexPNN(engine.index, object_store=engine.object_store)
        with pytest.raises(ValueError, match="compute_probabilities"):
            processor.query(queries[0], compute_probabilities=False, threshold=0.1)
        baseline = RTreePNN(engine.rtree, object_store=engine.object_store)
        with pytest.raises(ValueError, match="compute_probabilities"):
            baseline.query(queries[0], compute_probabilities=False, top_k=2)

    def test_result_carries_refinement_stats(self, engines, dataset):
        _, _, queries = dataset
        result = engines["ic"].execute(PNNQuery(queries[0], threshold=0.1))
        assert result.refinement is not None
        assert result.refinement.candidates >= len(result.answers)
        assert result.threshold == 0.1

    def test_kernel_parity_under_filters(self, engines, dataset):
        """Scalar and vectorized kernels agree on filtered probabilities."""
        _, _, queries = dataset
        answer_sets = self.collect_answer_sets(engines["ic"], queries)
        cache = RingCache()
        for q, objects in answer_sets:
            scalar = qualification_probabilities(objects, q, threshold=0.15)
            vectorized = qualification_probabilities_vectorized(
                objects, q, ring_cache=cache, threshold=0.15
            )
            assert scalar.keys() == vectorized.keys()
            for oid, p in scalar.items():
                assert vectorized[oid] == pytest.approx(p, abs=1e-9)

    def test_permutation_stability_under_filters(self, engines, dataset):
        """Filtered probabilities stay independent of candidate order."""
        _, _, queries = dataset
        answer_sets = self.collect_answer_sets(engines["ic"], queries)
        q, objects = answer_sets[0]
        forward = qualification_probabilities_vectorized(
            objects, q, threshold=0.1
        )
        backward = qualification_probabilities_vectorized(
            list(reversed(objects)), q, threshold=0.1
        )
        assert forward == backward
