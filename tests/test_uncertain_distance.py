"""Tests for distance distributions and possible-world sampling."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.uncertain.distance_distribution import (
    DistanceDistribution,
    _ring_coverage,
    coverage_array,
    ring_profile,
)
from repro.uncertain.objects import UncertainObject
from repro.uncertain.sampling import (
    empirical_distance_quantiles,
    estimate_nn_probabilities,
    sample_possible_world,
)


class TestRingCoverage:
    def test_fully_inside(self):
        assert _ring_coverage(1.0, 2.0, 5.0) == 1.0

    def test_fully_outside(self):
        assert _ring_coverage(1.0, 10.0, 2.0) == 0.0

    def test_half_coverage_when_query_circle_through_center(self):
        # Query circle radius equal to centre distance: covers roughly half of
        # a small ring around the centre.
        assert _ring_coverage(0.5, 5.0, 5.0) == pytest.approx(0.5, abs=0.05)

    def test_degenerate_inputs(self):
        assert _ring_coverage(0.0, 1.0, 2.0) == 1.0
        assert _ring_coverage(0.0, 3.0, 2.0) == 0.0
        assert _ring_coverage(1.0, 0.0, 2.0) == 1.0
        assert _ring_coverage(1.0, 0.0, 0.5) == 0.0


class TestDistanceDistribution:
    def test_support_matches_min_max_distances(self):
        obj = UncertainObject.uniform(1, Point(0, 0), 3.0)
        dist = DistanceDistribution(obj, Point(10.0, 0.0))
        lo, hi = dist.support()
        assert lo == pytest.approx(7.0)
        assert hi == pytest.approx(13.0)

    def test_cdf_bounds(self):
        obj = UncertainObject.gaussian(1, Point(0, 0), 3.0)
        dist = DistanceDistribution(obj, Point(10.0, 0.0))
        assert dist.cdf(6.9) == 0.0
        assert dist.cdf(13.1) == 1.0
        assert 0.0 < dist.cdf(10.0) < 1.0

    def test_cdf_monotone(self):
        obj = UncertainObject.gaussian(1, Point(5.0, 5.0), 4.0)
        dist = DistanceDistribution(obj, Point(0.0, 0.0))
        values = [dist.cdf(r) for r in np.linspace(dist.lower, dist.upper, 30)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_cdf_matches_monte_carlo(self):
        obj = UncertainObject.gaussian(7, Point(3.0, -2.0), 5.0)
        query = Point(9.0, 1.0)
        dist = DistanceDistribution(obj, query, rings=128)
        quantiles = empirical_distance_quantiles(
            obj, query, [0.25, 0.5, 0.75], samples=8000
        )
        for q, target in zip(quantiles, (0.25, 0.5, 0.75)):
            assert dist.cdf(q) == pytest.approx(target, abs=0.04)

    def test_query_inside_region(self):
        obj = UncertainObject.uniform(1, Point(0, 0), 5.0)
        dist = DistanceDistribution(obj, Point(1.0, 0.0))
        assert dist.lower == 0.0
        assert dist.cdf(6.0) == 1.0
        assert 0.0 < dist.cdf(2.0) < 1.0

    def test_survival_complements_cdf(self):
        obj = UncertainObject.uniform(1, Point(0, 0), 2.0)
        dist = DistanceDistribution(obj, Point(5.0, 0.0))
        assert dist.survival(4.0) == pytest.approx(1.0 - dist.cdf(4.0))

    def test_mean_within_support(self):
        obj = UncertainObject.gaussian(1, Point(0, 0), 2.0)
        dist = DistanceDistribution(obj, Point(6.0, 0.0))
        mean = dist.mean()
        assert dist.lower <= mean <= dist.upper

    def test_pdf_non_negative(self):
        obj = UncertainObject.uniform(1, Point(0, 0), 2.0)
        dist = DistanceDistribution(obj, Point(5.0, 0.0))
        for r in np.linspace(2.5, 7.5, 10):
            assert dist.pdf(r) >= 0.0

    def test_zero_radius_object(self):
        obj = UncertainObject.point_object(1, Point(1.0, 1.0))
        dist = DistanceDistribution(obj, Point(4.0, 5.0))
        assert dist.support() == (5.0, 5.0)
        assert dist.cdf(5.0) == 1.0
        assert dist.cdf(4.9) == 0.0

    def test_cdf_lower_boundary_is_direct_and_non_recursive(self):
        """Regression: cdf(lower) used to re-enter cdf(lower + 1e-12)."""

        class CountingDistribution(DistanceDistribution):
            calls = 0

            def cdf(self, r):
                type(self).calls += 1
                return super().cdf(r)

        obj = UncertainObject.uniform(1, Point(0.0, 0.0), 3.0)
        dist = CountingDistribution(obj, Point(10.0, 0.0))
        value = dist.cdf(dist.lower)
        assert CountingDistribution.calls == 1  # exactly one evaluation
        # No mass lies strictly below the minimum distance.
        assert value == 0.0
        assert dist.cdf(dist.lower - 1e-9) == 0.0


class TestVectorizedCdf:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: (UncertainObject.uniform(1, Point(0, 0), 3.0), Point(10.0, 0.0)),
            lambda: (UncertainObject.gaussian(2, Point(5, 5), 4.0), Point(0.0, 0.0)),
            lambda: (UncertainObject.uniform(3, Point(0, 0), 5.0), Point(1.0, 0.0)),
            lambda: (UncertainObject.uniform(4, Point(2, 2), 2.0), Point(2.0, 2.0)),
            lambda: (UncertainObject.point_object(5, Point(1, 1)), Point(4.0, 5.0)),
        ],
        ids=["exterior", "gaussian", "inside", "centred", "point-object"],
    )
    def test_cdf_many_matches_scalar(self, make):
        obj, query = make()
        dist = DistanceDistribution(obj, query)
        radii = np.linspace(dist.lower - 1.0, dist.upper + 1.0, 57)
        vectorized = dist.cdf_many(radii)
        for r, value in zip(radii, vectorized):
            assert value == pytest.approx(dist.cdf(float(r)), abs=1e-12)

    def test_coverage_array_matches_scalar(self):
        rng = np.random.default_rng(11)
        s = rng.uniform(0.0, 5.0, 40)
        s[:5] = 0.0
        r = rng.uniform(0.0, 12.0, 40)
        r[-3:] = 0.0
        for d in (0.0, 2.5, 7.0):
            expected = [_ring_coverage(float(si), d, float(ri)) for si, ri in zip(s, r)]
            got = coverage_array(s, d, r)
            assert np.allclose(got, expected, atol=1e-15)

    def test_precomputed_profile_equivalence(self):
        obj = UncertainObject.gaussian(1, Point(3.0, -2.0), 5.0)
        query = Point(9.0, 1.0)
        profile = ring_profile(obj, 64)
        with_profile = DistanceDistribution(obj, query, profile=profile)
        without = DistanceDistribution(obj, query)
        radii = np.linspace(0.0, 15.0, 31)
        assert np.array_equal(with_profile.cdf_many(radii), without.cdf_many(radii))

    def test_ring_profile_masses_sum_to_one(self):
        obj = UncertainObject.gaussian(1, Point(0, 0), 4.0)
        masses, mids = ring_profile(obj, 32)
        assert masses.sum() == pytest.approx(1.0)
        assert len(masses) == len(mids) == 32
        point = UncertainObject.point_object(2, Point(0, 0))
        masses, mids = ring_profile(point, 32)
        assert masses[0] == 1.0 and masses.sum() == 1.0


class TestPossibleWorldSampling:
    def test_sample_possible_world_positions(self):
        objects = [
            UncertainObject.uniform(0, Point(0, 0), 1.0),
            UncertainObject.uniform(1, Point(10, 10), 2.0),
        ]
        rng = np.random.default_rng(3)
        world = sample_possible_world(objects, rng)
        assert len(world) == 2
        assert world[0].distance_to(Point(0, 0)) <= 1.0 + 1e-9
        assert world[1].distance_to(Point(10, 10)) <= 2.0 + 1e-9

    def test_estimate_nn_probabilities_sum_to_one(self):
        objects = [
            UncertainObject.gaussian(0, Point(0, 0), 2.0),
            UncertainObject.gaussian(1, Point(5, 0), 2.0),
            UncertainObject.gaussian(2, Point(0, 5), 2.0),
        ]
        probabilities = estimate_nn_probabilities(objects, Point(1.0, 1.0), worlds=2000)
        assert sum(probabilities.values()) == pytest.approx(1.0)
        assert probabilities[0] > probabilities[1]

    def test_estimate_handles_empty_input(self):
        assert estimate_nn_probabilities([], Point(0, 0)) == {}

    def test_dominating_object_gets_probability_one(self):
        objects = [
            UncertainObject.uniform(0, Point(0, 0), 0.5),
            UncertainObject.uniform(1, Point(100, 100), 0.5),
        ]
        probabilities = estimate_nn_probabilities(objects, Point(0.0, 0.0), worlds=500)
        assert probabilities[0] == pytest.approx(1.0)
        assert probabilities[1] == pytest.approx(0.0)
