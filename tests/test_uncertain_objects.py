"""Unit tests for uncertain objects."""

import numpy as np
import pytest

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.uncertain.objects import UncertainObject
from repro.uncertain.pdf import TruncatedGaussianPdf, UniformPdf


class TestConstruction:
    def test_default_pdf_is_truncated_gaussian(self):
        obj = UncertainObject(1, Circle(Point(0, 0), 10.0))
        assert isinstance(obj.pdf, TruncatedGaussianPdf)
        assert obj.pdf.radius == 10.0

    def test_pdf_radius_mismatch_rejected(self):
        with pytest.raises(ValueError):
            UncertainObject(1, Circle(Point(0, 0), 10.0), UniformPdf(5.0))

    def test_point_object(self):
        obj = UncertainObject.point_object(3, Point(2.0, 4.0))
        assert obj.radius == 0.0
        assert obj.center == Point(2.0, 4.0)

    def test_uniform_and_gaussian_constructors(self):
        u = UncertainObject.uniform(1, Point(0, 0), 5.0)
        g = UncertainObject.gaussian(2, Point(1, 1), 5.0, sigma=1.0)
        assert isinstance(u.pdf, UniformPdf)
        assert isinstance(g.pdf, TruncatedGaussianPdf)
        assert g.pdf.sigma == 1.0


class TestGeometryAccessors:
    def test_distances(self):
        obj = UncertainObject.uniform(1, Point(0, 0), 2.0)
        q = Point(5.0, 0.0)
        assert obj.min_distance(q) == pytest.approx(3.0)
        assert obj.max_distance(q) == pytest.approx(7.0)

    def test_mbc_is_the_region(self):
        obj = UncertainObject.uniform(1, Point(1, 2), 3.0)
        assert obj.mbc().center == Point(1, 2)
        assert obj.mbc().radius == 3.0

    def test_mbr_bounds_the_region(self):
        obj = UncertainObject.uniform(1, Point(1, 2), 3.0)
        mbr = obj.mbr()
        assert (mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax) == (-2.0, -1.0, 4.0, 5.0)


class TestProbabilisticBehaviour:
    def test_sample_positions_inside_region(self):
        obj = UncertainObject.gaussian(1, Point(10.0, 10.0), 5.0)
        rng = np.random.default_rng(0)
        samples = obj.sample_positions(400, rng)
        assert samples.shape == (400, 2)
        dists = np.linalg.norm(samples - np.array([10.0, 10.0]), axis=1)
        assert np.all(dists <= 5.0 + 1e-9)

    def test_distance_cdf_support(self):
        obj = UncertainObject.uniform(1, Point(0.0, 0.0), 2.0)
        q = Point(10.0, 0.0)
        assert obj.distance_cdf(q, 7.0) == pytest.approx(0.0, abs=1e-9)
        assert obj.distance_cdf(q, 13.0) == pytest.approx(1.0)

    def test_distance_cdf_monotone(self):
        obj = UncertainObject.gaussian(1, Point(0.0, 0.0), 4.0)
        q = Point(6.0, 1.0)
        values = [obj.distance_cdf(q, r) for r in np.linspace(1.0, 12.0, 12)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
