"""Unit tests for the uncertainty pdfs."""

import math

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.uncertain.pdf import HistogramPdf, TruncatedGaussianPdf, UniformPdf


RNG = np.random.default_rng(1234)


class TestUniformPdf:
    def test_radial_cdf_endpoints(self):
        pdf = UniformPdf(10.0)
        assert pdf.radial_cdf(0.0) == 0.0
        assert pdf.radial_cdf(10.0) == 1.0
        assert pdf.radial_cdf(20.0) == 1.0

    def test_radial_cdf_is_area_fraction(self):
        pdf = UniformPdf(10.0)
        assert pdf.radial_cdf(5.0) == pytest.approx(0.25)

    def test_density_constant_inside_zero_outside(self):
        pdf = UniformPdf(2.0)
        inside = pdf.density(Point(0.5, 0.5))
        assert inside == pytest.approx(1.0 / (math.pi * 4.0))
        assert pdf.density(Point(3.0, 0.0)) == 0.0

    def test_samples_respect_radius(self):
        pdf = UniformPdf(3.0)
        offsets = pdf.sample_offsets(500, RNG)
        assert offsets.shape == (500, 2)
        radii = np.linalg.norm(offsets, axis=1)
        assert np.all(radii <= 3.0 + 1e-9)

    def test_sample_radial_distribution_matches_cdf(self):
        pdf = UniformPdf(4.0)
        radii = np.linalg.norm(pdf.sample_offsets(4000, RNG), axis=1)
        empirical = np.mean(radii <= 2.0)
        assert empirical == pytest.approx(pdf.radial_cdf(2.0), abs=0.05)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            UniformPdf(-1.0)


class TestTruncatedGaussianPdf:
    def test_default_sigma_is_one_third_radius(self):
        pdf = TruncatedGaussianPdf(6.0)
        assert pdf.sigma == pytest.approx(2.0)

    def test_cdf_monotone_and_bounded(self):
        pdf = TruncatedGaussianPdf(10.0)
        values = [pdf.radial_cdf(r) for r in np.linspace(0, 10, 21)]
        assert values[0] == 0.0
        assert values[-1] == pytest.approx(1.0)
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_more_mass_near_center_than_uniform(self):
        gaussian = TruncatedGaussianPdf(10.0)
        uniform = UniformPdf(10.0)
        assert gaussian.radial_cdf(3.0) > uniform.radial_cdf(3.0)

    def test_density_decreases_with_distance(self):
        pdf = TruncatedGaussianPdf(10.0)
        assert pdf.density(Point(1.0, 0.0)) > pdf.density(Point(5.0, 0.0))
        assert pdf.density(Point(11.0, 0.0)) == 0.0

    def test_samples_match_cdf(self):
        pdf = TruncatedGaussianPdf(10.0)
        radii = np.linalg.norm(pdf.sample_offsets(4000, RNG), axis=1)
        assert np.all(radii <= 10.0 + 1e-9)
        assert np.mean(radii <= 4.0) == pytest.approx(pdf.radial_cdf(4.0), abs=0.05)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            TruncatedGaussianPdf(5.0, sigma=0.0)


class TestHistogramPdf:
    def test_normalisation(self):
        pdf = HistogramPdf(10.0, [1.0, 1.0, 2.0, 4.0])
        assert sum(pdf.masses) == pytest.approx(1.0)

    def test_radial_cdf_interpolates_within_bars(self):
        pdf = HistogramPdf(10.0, [1.0, 0.0])
        # All mass in the inner ring [0, 5]; cdf at radius 5 must be 1.
        assert pdf.radial_cdf(5.0) == pytest.approx(1.0)
        assert pdf.radial_cdf(2.5) == pytest.approx(0.25, abs=1e-9)

    def test_density_zero_outside(self):
        pdf = HistogramPdf(4.0, [0.5, 0.5])
        assert pdf.density(Point(5.0, 0.0)) == 0.0
        assert pdf.density(Point(1.0, 0.0)) > 0.0

    def test_sampling_respects_bar_masses(self):
        pdf = HistogramPdf(10.0, [1.0, 0.0, 0.0, 0.0])
        radii = np.linalg.norm(pdf.sample_offsets(1000, RNG), axis=1)
        assert np.all(radii <= 2.5 + 1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramPdf(10.0, [])
        with pytest.raises(ValueError):
            HistogramPdf(10.0, [-1.0, 2.0])
        with pytest.raises(ValueError):
            HistogramPdf(10.0, [0.0, 0.0])


class TestHistogramConversion:
    def test_gaussian_to_histogram_preserves_cdf(self):
        gaussian = TruncatedGaussianPdf(20.0)
        histogram = gaussian.to_histogram(bars=20)
        assert histogram.bars == 20
        for r in (4.0, 8.0, 12.0, 16.0, 20.0):
            assert histogram.radial_cdf(r) == pytest.approx(
                gaussian.radial_cdf(r), abs=0.03
            )

    def test_zero_radius_histogram(self):
        histogram = UniformPdf(0.0).to_histogram()
        assert histogram.radial_cdf(0.0) == 1.0

    def test_radial_pdf_numerical_derivative(self):
        pdf = UniformPdf(10.0)
        # d/dr (r/R)^2 = 2r/R^2
        assert pdf.radial_pdf(5.0) == pytest.approx(0.1, rel=1e-2)
