"""Tests for the SVG visualisation module and the command-line interface."""


import pytest

from repro.cli import build_parser, main
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.viz.svg import SvgCanvas, render_uv_diagram


DOMAIN = Rect(0.0, 0.0, 1000.0, 500.0)


class TestSvgCanvas:
    def test_dimensions_follow_domain_aspect(self):
        canvas = SvgCanvas(DOMAIN, width=800)
        assert canvas.width == 800
        assert canvas.height == 400
        with pytest.raises(ValueError):
            SvgCanvas(DOMAIN, width=0)

    def test_coordinate_mapping_flips_y(self):
        canvas = SvgCanvas(DOMAIN, width=1000)
        assert canvas.to_pixels(Point(0.0, 0.0)) == (0.0, 500.0)
        assert canvas.to_pixels(Point(1000.0, 500.0)) == (1000.0, 0.0)

    def test_elements_serialised(self):
        canvas = SvgCanvas(DOMAIN, width=400)
        canvas.add_circle(Circle(Point(500.0, 250.0), 50.0))
        canvas.add_polygon(Polygon([Point(0, 0), Point(100, 0), Point(0, 100)]))
        canvas.add_rect(Rect(10, 10, 20, 20))
        canvas.add_marker(Point(5, 5), label="q <1>")
        canvas.add_title("demo & title")
        svg = canvas.to_svg()
        assert svg.startswith("<svg")
        assert svg.count("<circle") == 2  # region circle + marker
        assert "<polygon" in svg
        assert "<rect" in svg.replace('rect width="100%"', "", 1)
        # Labels are escaped.
        assert "q &lt;1&gt;" in svg
        assert "demo &amp; title" in svg

    def test_degenerate_polygon_skipped(self):
        canvas = SvgCanvas(DOMAIN, width=400)
        canvas.add_polygon(Polygon([Point(0, 0), Point(1, 1)]))
        assert "<polygon" not in canvas.to_svg()

    def test_save(self, tmp_path):
        canvas = SvgCanvas(DOMAIN, width=200)
        path = tmp_path / "out.svg"
        canvas.save(str(path))
        assert path.exists()
        assert path.read_text().startswith("<svg")


class TestRenderDiagram:
    def test_render_full_diagram(self, small_diagram, tmp_path):
        canvas = render_uv_diagram(
            small_diagram,
            width=400,
            highlight_cells=[small_diagram.objects[0].oid],
            query_points=[Point(500.0, 500.0)],
            title="test render",
        )
        svg = canvas.to_svg()
        # One circle per object plus the query marker.
        assert svg.count("<circle") == len(small_diagram.objects) + 1
        assert "test render" in svg
        path = tmp_path / "diagram.svg"
        canvas.save(str(path))
        assert path.stat().st_size > 500


class TestCli:
    def test_parser_has_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["info"])
        assert args.command == "info"

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "UV-diagram" in out

    def test_build_command(self, capsys):
        code = main([
            "build", "--objects", "30", "--diameter", "300", "--seed", "2",
            "--page-capacity", "8", "--seed-knn", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "construction time" in out
        assert "leaf_nodes" in out

    def test_query_command_with_point(self, capsys):
        code = main([
            "query", "--objects", "30", "--diameter", "300", "--seed", "3",
            "--page-capacity", "8", "--seed-knn", "10", "--at", "5000,5000",
        ])
        assert code == 0
        assert "PNN(5000.0, 5000.0)" in capsys.readouterr().out

    def test_query_command_invalid_point(self, capsys):
        code = main([
            "query", "--objects", "10", "--seed-knn", "5", "--at", "1,2,3",
        ])
        assert code == 2

    def test_render_command(self, tmp_path, capsys):
        output = tmp_path / "picture.svg"
        code = main([
            "render", "--objects", "25", "--diameter", "300", "--seed", "4",
            "--page-capacity", "8", "--seed-knn", "10",
            "--output", str(output), "--highlight", "0,1",
        ])
        assert code == 0
        assert output.exists()


class TestServeCli:
    def test_parser_accepts_serve(self):
        parser = build_parser()
        args = parser.parse_args([
            "serve", "--load", "uv.snap", "--workers", "4", "--port", "0",
            "--rate-limit", "10", "--read-latency", "0.01",
        ])
        assert args.command == "serve"
        assert args.workers == 4
        assert args.load == "uv.snap"
        assert args.load_store == "mmap"
        assert args.rate_limit == 10.0

    def test_serve_requires_load(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_rejects_bad_config(self, capsys):
        code = main(["serve", "--load", "uv.snap", "--workers", "0"])
        assert code == 2
        assert "workers" in capsys.readouterr().err
