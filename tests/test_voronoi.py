"""Tests for the classic point Voronoi wrapper (zero-uncertainty special case)."""

import numpy as np
import pytest

from repro.core.uv_cell import answer_objects_brute_force
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.uncertain.objects import UncertainObject
from repro.voronoi.point_voronoi import PointVoronoiDiagram


DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)


def make_sites(count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
        for _ in range(count)
    ]


class TestNearestSite:
    def test_nearest_site_matches_brute_force(self):
        sites = make_sites(30, seed=2)
        diagram = PointVoronoiDiagram(sites, domain=DOMAIN)
        rng = np.random.default_rng(7)
        for _ in range(20):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            expected = min(range(len(sites)), key=lambda i: sites[i].distance_to(q))
            assert diagram.nearest_site(q) == expected

    def test_nearest_sites_ordering(self):
        sites = make_sites(20, seed=3)
        diagram = PointVoronoiDiagram(sites)
        results = diagram.nearest_sites(Point(50, 50), 5)
        dists = [d for _, d in results]
        assert dists == sorted(dists)
        assert diagram.nearest_sites(Point(0, 0), 0) == []

    def test_custom_ids(self):
        sites = [Point(0, 0), Point(10, 10)]
        diagram = PointVoronoiDiagram(sites, ids=[100, 200])
        assert diagram.nearest_site(Point(1, 1)) == 100
        with pytest.raises(ValueError):
            PointVoronoiDiagram(sites, ids=[1])


class TestCells:
    def test_cell_polygon_contains_site(self):
        sites = make_sites(12, seed=4)
        diagram = PointVoronoiDiagram(sites, domain=DOMAIN)
        poly = diagram.cell_polygon(0, resolution=80)
        assert poly.contains_point(sites[0])

    def test_cell_requires_domain(self):
        diagram = PointVoronoiDiagram(make_sites(5))
        with pytest.raises(ValueError):
            diagram.cell_polygon(0)

    def test_neighbors_symmetric(self):
        sites = make_sites(15, seed=5)
        diagram = PointVoronoiDiagram(sites, domain=DOMAIN)
        for i in range(len(sites)):
            for j in diagram.neighbors(i):
                assert i in diagram.neighbors(j)


class TestZeroRadiusSpecialCase:
    """The ordinary Voronoi diagram is the UV-diagram of zero-radius objects."""

    def test_pnn_over_points_has_single_answer_equal_to_voronoi_owner(self):
        sites = make_sites(25, seed=6)
        objects = [UncertainObject.point_object(i, p) for i, p in enumerate(sites)]
        diagram = PointVoronoiDiagram(sites, domain=DOMAIN)
        rng = np.random.default_rng(11)
        for _ in range(15):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            answers = answer_objects_brute_force(objects, q)
            assert len(answers) == 1
            assert answers[0] == diagram.nearest_site(q)
