"""Tests for :mod:`repro.wal`: codec, log, recovery, generations, checkpoints.

The durability contract under test: a record acknowledged by the log (the
``append`` returned under ``fsync="always"``) survives any crash; recovery
replays exactly the records newer than the manifest's ``base_lsn`` in LSN
order; a checkpoint folds them into generation N+1 atomically and truncates
the log without losing updates appended meanwhile.
"""

import json
import os

import pytest

from repro import DiagramConfig, Point, QueryEngine, UncertainObject
from repro.engine.snapshot import (
    Manifest,
    generation_filename,
    initialize_generation,
    is_live_directory,
    list_generations,
    manifest_path,
    read_manifest,
    resolve_snapshot,
    wal_path,
    write_manifest,
)
from repro.geometry.circle import Circle
from repro.uncertain.pdf import HistogramPdf, TruncatedGaussianPdf, UniformPdf
from repro.wal import (
    OP_DELETE,
    OP_INSERT,
    WalError,
    WriteAheadLog,
    read_records,
    replay,
    scan_wal,
)
from repro.wal.log import (
    HEADER_SIZE,
    decode_delete,
    decode_insert,
    encode_delete,
    encode_insert,
    encode_record,
)


def _objects():
    return [
        UncertainObject(1, Circle(Point(100.0, 120.0), 30.0), UniformPdf(30.0)),
        UncertainObject(2, Circle(Point(400.0, 300.0), 25.0),
                        TruncatedGaussianPdf(25.0)),
        UncertainObject(3, Circle(Point(700.0, 650.0), 40.0),
                        HistogramPdf(40.0, [0.5, 0.3, 0.15, 0.05])),
    ]


class TestCodec:
    def test_insert_round_trip_is_bit_exact(self):
        for obj in _objects():
            back = decode_insert(encode_insert(obj))
            assert back.oid == obj.oid
            assert back.region.center.x == obj.region.center.x
            assert back.region.center.y == obj.region.center.y
            assert back.region.radius == obj.region.radius
            assert type(back.pdf) is type(obj.pdf)
            # The same payload encodes identically -- byte-for-byte.
            assert encode_insert(back) == encode_insert(obj)

    def test_delete_round_trip(self):
        for oid in (0, 1, 123456, 2**40):
            assert decode_delete(encode_delete(oid)) == oid

    def test_decode_delete_rejects_wrong_length(self):
        with pytest.raises(WalError):
            decode_delete(b"\x01\x02")

    def test_decode_insert_rejects_garbage(self):
        with pytest.raises(WalError):
            decode_insert(encode_delete(7))


class TestWriteAheadLog:
    def test_append_scan_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path)
        objects = _objects()
        assert log.append(OP_INSERT, encode_insert(objects[0])) == 1
        assert log.append(OP_INSERT, encode_insert(objects[1])) == 2
        assert log.append(OP_DELETE, encode_delete(1)) == 3
        log.close()

        scan = scan_wal(path)
        assert [r.lsn for r in scan.records] == [1, 2, 3]
        assert [r.op for r in scan.records] == [OP_INSERT, OP_INSERT, OP_DELETE]
        assert decode_insert(scan.records[0].payload).oid == 1
        assert decode_delete(scan.records[2].payload) == 1
        assert scan.torn_bytes == 0
        assert scan.last_lsn == 3

    def test_lsn_regression_raises(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "wal.log"))
        log.append(OP_DELETE, encode_delete(1), lsn=5)
        with pytest.raises(WalError, match="LSN"):
            log.append(OP_DELETE, encode_delete(2), lsn=5)
        log.close()

    def test_reopen_continues_lsn_sequence(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path)
        log.append(OP_DELETE, encode_delete(1))
        log.close()
        log = WriteAheadLog(path)
        assert log.last_lsn == 1
        assert log.append(OP_DELETE, encode_delete(2)) == 2
        log.close()

    def test_torn_tail_is_ignored_and_truncated(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path)
        log.append(OP_DELETE, encode_delete(1))
        log.append(OP_DELETE, encode_delete(2))
        log.close()
        with open(path, "ab") as handle:
            handle.write(b"\x07\x00\x00\x00garbage-torn-tail")

        scan = scan_wal(path)
        assert [r.lsn for r in scan.records] == [1, 2]
        assert scan.torn_bytes > 0
        assert scan.torn_reason

        # Reopening truncates the torn bytes; the next append is clean.
        log = WriteAheadLog(path)
        assert log.append(OP_DELETE, encode_delete(3)) == 3
        log.close()
        scan = scan_wal(path)
        assert [r.lsn for r in scan.records] == [1, 2, 3]
        assert scan.torn_bytes == 0

    def test_corrupt_checksum_stops_the_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path)
        first_end = HEADER_SIZE + len(encode_record(1, OP_DELETE, encode_delete(1)))
        log.append(OP_DELETE, encode_delete(1))
        log.append(OP_DELETE, encode_delete(2))
        log.close()
        with open(path, "r+b") as handle:
            handle.seek(first_end + 20)  # inside the second record
            byte = handle.read(1)
            handle.seek(first_end + 20)
            handle.write(bytes([byte[0] ^ 0xFF]))

        scan = scan_wal(path)
        assert [r.lsn for r in scan.records] == [1]
        assert scan.torn_bytes > 0
        assert "checksum" in scan.torn_reason

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "not-a-wal")
        with open(path, "wb") as handle:
            handle.write(b"HELLO WORLD PADDING")
        with pytest.raises(WalError, match="magic"):
            scan_wal(path)

    def test_truncate_through_keeps_newer_records(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path)
        for lsn in range(1, 6):
            log.append(OP_DELETE, encode_delete(lsn * 10))
        log.truncate_through(3)
        assert log.last_lsn == 5
        assert log.append(OP_DELETE, encode_delete(60)) == 6
        log.close()
        scan = scan_wal(path)
        assert [r.lsn for r in scan.records] == [4, 5, 6]

    def test_batch_fsync_policy_syncs_on_demand(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "wal.log"), fsync="batch")
        log.append(OP_DELETE, encode_delete(1))
        log.append(OP_DELETE, encode_delete(2))
        assert log.sync() == 2
        assert log.sync() == 0
        log.close()

    def test_truncate_clears_pending_batch_count(self, tmp_path):
        # truncate_through fsyncs the survivors into the compact file, so a
        # later sync() must not re-count appends made before the truncation.
        log = WriteAheadLog(str(tmp_path / "wal.log"), fsync="batch")
        log.append(OP_DELETE, encode_delete(1))
        log.append(OP_DELETE, encode_delete(2))
        log.truncate_through(1)
        assert log.sync() == 0
        log.append(OP_DELETE, encode_delete(3))
        assert log.sync() == 1
        log.close()


class TestManifest:
    def test_round_trip(self, tmp_path):
        directory = str(tmp_path)
        manifest = Manifest(generation=7, snapshot=generation_filename(7),
                            base_lsn=123)
        write_manifest(directory, manifest)
        assert read_manifest(directory) == manifest
        assert is_live_directory(directory)
        # Atomic install: no temp file left behind.
        assert not os.path.exists(manifest_path(directory) + ".tmp")

    def test_read_manifest_rejects_non_deployment(self, tmp_path):
        with pytest.raises(ValueError, match="not a live deployment"):
            read_manifest(str(tmp_path))

    def test_corrupt_manifest_raises(self, tmp_path):
        with open(manifest_path(str(tmp_path)), "w", encoding="utf-8") as fh:
            fh.write("{broken json")
        with pytest.raises(ValueError, match="corrupt manifest"):
            read_manifest(str(tmp_path))

    def test_newer_format_rejected(self, tmp_path):
        blob = {"manifest_format": 99, "generation": 1,
                "snapshot": "gen-000001.snap", "base_lsn": 0}
        with open(manifest_path(str(tmp_path)), "w", encoding="utf-8") as fh:
            json.dump(blob, fh)
        with pytest.raises(ValueError, match="newer"):
            read_manifest(str(tmp_path))

    def test_resolve_snapshot_passes_plain_files_through(self, tmp_path):
        assert resolve_snapshot(str(tmp_path / "uv.snap")) == (
            str(tmp_path / "uv.snap"), None
        )


def _deployment(tmp_path, small_objects, small_domain, backend="grid"):
    engine = QueryEngine.build(
        small_objects, small_domain, DiagramConfig(backend=backend)
    )
    directory = str(tmp_path / "dep")
    initialize_generation(engine, directory)
    return directory


def _fresh_object(oid, x=222.0, y=333.0, radius=18.0):
    return UncertainObject(oid, Circle(Point(x, y), radius), UniformPdf(radius))


class TestLiveEngine:
    def test_save_generation_and_open_live(self, tmp_path, small_objects,
                                           small_domain):
        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.open_live(directory)
        assert engine.generation == 1
        assert engine.live_directory == directory
        assert engine.last_lsn == 0
        assert not engine.dirty
        engine.close_wal()

    def test_initialize_twice_refuses(self, tmp_path, small_objects,
                                      small_domain):
        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.build(
            small_objects, small_domain, DiagramConfig(backend="grid")
        )
        with pytest.raises(ValueError, match="already holds"):
            initialize_generation(engine, directory)

    def test_updates_survive_reopen(self, tmp_path, small_objects, small_domain):
        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.open_live(directory)
        engine.insert(_fresh_object(500))
        engine.delete(0)
        assert engine.last_lsn == 2
        assert engine.pending_wal_records == 2
        engine.close_wal()

        reopened = QueryEngine.open_live(directory)
        assert reopened.last_lsn == 2
        assert 500 in reopened.by_id
        assert 0 not in reopened.by_id
        assert reopened.dirty  # replayed records are not yet checkpointed
        reopened.close_wal()

    def test_replay_rejects_out_of_order_records(self, tmp_path, small_objects,
                                                 small_domain):
        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.open_live(directory)
        engine.insert(_fresh_object(600))
        records = read_records(wal_path(directory)).records
        with pytest.raises(WalError, match="out of LSN order"):
            replay(engine, records, after_lsn=records[0].lsn)
        engine.close_wal()

    def test_readonly_snapshot_open_still_works(self, tmp_path, small_objects,
                                                small_domain):
        directory = _deployment(tmp_path, small_objects, small_domain)
        snapshot_file, generation = resolve_snapshot(directory)
        assert generation == 1
        engine = QueryEngine.open(snapshot_file, readonly=True)
        assert len(engine) == len(small_objects)


class TestCheckpoint:
    def test_checkpoint_flips_generation_and_truncates(self, tmp_path,
                                                       small_objects,
                                                       small_domain):
        from repro.wal import Checkpointer

        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.open_live(directory)
        engine.insert(_fresh_object(700))
        engine.delete(1)

        result = Checkpointer(engine).run_once()
        assert result is not None
        assert result.generation == 2
        assert result.base_lsn == 2
        assert result.folded_records == 2
        assert engine.generation == 2
        assert engine.pending_wal_records == 0
        assert not engine.dirty
        assert read_records(wal_path(directory)).records == []
        manifest = read_manifest(directory)
        assert manifest.generation == 2
        assert manifest.base_lsn == 2
        engine.close_wal()

        reopened = QueryEngine.open_live(directory)
        assert reopened.generation == 2
        assert 700 in reopened.by_id
        assert 1 not in reopened.by_id
        reopened.close_wal()

    def test_checkpoint_skips_when_quiet(self, tmp_path, small_objects,
                                         small_domain):
        from repro.wal import Checkpointer

        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.open_live(directory)
        checkpointer = Checkpointer(engine, min_records=1)
        assert checkpointer.run_once() is None
        # force overrides the threshold even with nothing pending
        forced = checkpointer.run_once(force=True)
        assert forced is not None and forced.generation == 2
        engine.close_wal()

    def test_updates_during_checkpoint_survive_truncation(self, tmp_path,
                                                          small_objects,
                                                          small_domain):
        from repro.wal import Checkpointer

        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.open_live(directory)
        engine.insert(_fresh_object(800))
        objects, base_lsn = engine.checkpoint_capture()
        # An update that lands after the capture but before the flip:
        engine.insert(_fresh_object(801, x=555.0, y=444.0))
        result = Checkpointer(engine).run_once()
        assert result is not None
        # Both records were folded: run_once re-captures at flip time.
        assert result.base_lsn == 2
        engine.close_wal()

    def test_capture_waits_for_in_flight_mutation(self, tmp_path,
                                                  small_objects, small_domain):
        """checkpoint_capture must never see an LSN whose overlay apply is
        still in flight -- the truncation that follows would drop the
        acknowledged update (regression: append and apply used to run under
        separate lock acquisitions)."""
        import threading
        import time

        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.open_live(directory)
        lsn_before = engine.last_lsn

        in_apply = threading.Event()
        original_apply = engine._apply_insert

        def slow_apply(obj):
            # Signal the capture thread, then linger: a capture that does
            # not synchronise with mutators would run in this window and
            # read last_lsn without the object.
            in_apply.set()
            time.sleep(0.3)
            return original_apply(obj)

        engine._apply_insert = slow_apply
        captured = {}

        def capture():
            assert in_apply.wait(5.0)
            objects, last_lsn = engine.checkpoint_capture()
            captured["oids"] = {obj.oid for obj in objects}
            captured["last_lsn"] = last_lsn

        thread = threading.Thread(target=capture)
        thread.start()
        engine.insert(_fresh_object(980))
        thread.join(10.0)
        assert not thread.is_alive()
        # The capture ran after the append (the event fires post-append), so
        # its watermark covers the insert -- and therefore the object list
        # must already contain it.
        assert captured["last_lsn"] == lsn_before + 1
        assert 980 in captured["oids"]
        engine.close_wal()

    def test_no_lost_updates_under_concurrent_checkpoints(self, tmp_path,
                                                          small_objects,
                                                          small_domain):
        """A mutation stream racing a fast background checkpointer loses
        nothing: every acknowledged update survives reopen."""
        from repro.wal import Checkpointer

        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.open_live(directory)
        checkpointer = Checkpointer(engine, interval=0.01, min_records=1)
        checkpointer.start()
        inserted = []
        deleted = []
        try:
            for oid in range(2000, 2040):
                engine.insert(_fresh_object(oid))
                inserted.append(oid)
                if oid % 5 == 0:
                    engine.delete(oid)
                    deleted.append(oid)
        finally:
            checkpointer.stop()
        assert checkpointer.last_error is None
        engine.close_wal()

        reopened = QueryEngine.open_live(directory)
        for oid in inserted:
            if oid in deleted:
                assert oid not in reopened.by_id
            else:
                assert oid in reopened.by_id
        reopened.close_wal()

    def test_prune_keeps_current_and_previous(self, tmp_path, small_objects,
                                              small_domain):
        from repro.wal import Checkpointer

        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.open_live(directory)
        checkpointer = Checkpointer(engine)
        oid = 900
        for expected_generation in (2, 3, 4):
            engine.insert(_fresh_object(oid))
            oid += 1
            result = checkpointer.run_once()
            assert result is not None
            assert result.generation == expected_generation
        engine.close_wal()
        generations = list_generations(directory)
        assert sorted(generations) == [3, 4]

    def test_background_thread_checkpoints(self, tmp_path, small_objects,
                                           small_domain):
        import time

        from repro.wal import Checkpointer

        directory = _deployment(tmp_path, small_objects, small_domain)
        engine = QueryEngine.open_live(directory)
        engine.insert(_fresh_object(950))
        checkpointer = Checkpointer(engine, interval=0.05)
        checkpointer.start()
        try:
            deadline = time.monotonic() + 10.0
            while engine.generation < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            checkpointer.stop()
        assert checkpointer.last_error is None
        assert engine.generation == 2
        assert checkpointer.checkpoints_run >= 1
        engine.close_wal()
